//! Multi-backend dispatch: the [`Backend`] trait, the deterministic
//! [`RemoteLlm`] endpoint simulator, and the [`BackendPool`] router.
//!
//! # The `Backend` contract
//!
//! A [`Backend`] is one *endpoint* serving completions — in production an
//! HTTP host behind a load balancer, here a deterministic simulation of one.
//! Implementations must uphold:
//!
//! 1. **Semantic identity.** `complete` either fails or returns a completion
//!    whose *text* is a pure function of the prompt — never of the attempt
//!    number, wall-clock time, or thread interleaving. Accounting fields
//!    (`cost_usd`, `latency_ms`) may differ per backend; the text may not.
//!    Backends advertise the model they serve via [`Backend::fingerprint`];
//!    two backends with equal fingerprints MUST produce byte-identical text
//!    for every prompt. [`BackendPool::new`] enforces fingerprint equality so
//!    routing and failover can never change query results.
//! 2. **Deterministic failure.** Whether attempt `k` of a prompt fails must
//!    be a pure function of `(backend, prompt, k)`. This keeps *call counts*
//!    reproducible: the retry/failover trace for a query is identical across
//!    runs and across parallelism levels.
//! 3. **Thread safety without serialization.** `complete` is called from many
//!    scan workers at once; implementations must not funnel requests through
//!    one lock (interior counters should be atomics).
//!
//! # Failover
//!
//! [`BackendPool::complete`] orders the backends by the configured
//! [`RoutingPolicy`], then walks that candidate list: each candidate gets at
//! most `1 + retries` attempts with exponential backoff between attempts
//! (`backoff_base_ms * 2^attempt`, capped). The first success wins; if every
//! candidate is exhausted the last error is returned. Retries and failover
//! attempts are *physical* calls — they show up in the per-backend counters
//! ([`BackendPool::stats`]) but never in the engine's logical call budget
//! (`max_llm_calls`), which counts prompts, not attempts.
//!
//! # Circuit breaker (backend health tracking)
//!
//! Without health tracking a hard-down backend costs `1 + retries` wasted
//! attempts on *every* request routed to it. With
//! [`BackendPool::with_breaker`] each backend carries a breaker:
//!
//! * **closed** — requests flow normally; every success resets the
//!   consecutive-error count.
//! * **open** — after `threshold` consecutive failed attempts the backend is
//!   skipped by the candidate walk entirely (recorded as
//!   [`BackendStats::short_circuits`]); the total attempts a hard-down
//!   backend absorbs is bounded by the threshold (plus in-flight races), not
//!   by request count.
//! * **half-open** — once `cooldown_ms` elapses, exactly one probe request
//!   is let through *per cooldown window*. Success closes the breaker;
//!   failure re-opens it for another cooldown. The single-probe guarantee is
//!   race-free: the probe claim is a compare-exchange on the exact cooldown
//!   expiry the claimant observed (the claim and the expiry share one atomic
//!   word), so N racing requests on an expired breaker admit exactly one
//!   probe — and a racer that read the expiry just before a failed probe
//!   re-opened the breaker cannot claim a second probe inside the new
//!   window. An abandoned probe (dropped [`CallHandle`], panicking backend)
//!   releases the claim and re-expires the cooldown immediately.
//!
//! The breaker is disabled by default (`threshold == 0`): with it off, the
//! physical retry/failover trace is the PR 2 pure function of
//! `(backend, prompt, attempt)`; with it on, wall-clock cooldowns make the
//! trace time-dependent by design — health tracking trades trace
//! reproducibility for bounded waste. Completion *text* is unaffected either
//! way.
//!
//! # Failure-handling contract
//!
//! The invariants every fault-tolerance mechanism in this module upholds,
//! relied on by the scheduler and the chaos harness:
//!
//! * **Retries, failover and hedges are budget-free.** They are *physical*
//!   attempts — visible in [`BackendPool::stats`] — but the engine's logical
//!   call budget (`max_llm_calls`) counts prompts. A fault that costs extra
//!   attempts can never starve a query of its call budget.
//! * **Bounded retry spend.** One logical call issues at most
//!   `backends × (1 + retries)` physical attempts plus at most one hedge;
//!   with the breaker on, a hard-down backend absorbs at most `threshold`
//!   attempts per cooldown window (plus one probe), no matter the request
//!   rate.
//! * **Faults cannot change rows.** Pooled backends are fingerprint-equal,
//!   completion text is a pure function of the prompt, and failure decisions
//!   are pure functions of `(backend, prompt, attempt, seed, chaos plan)` —
//!   so any interleaving of retries, failover, hedging and fault injection
//!   yields byte-identical result rows.
//! * **Deterministic fault injection.** A [`ChaosPlan`]
//!   ([`BackendPool::from_specs_with_chaos`]) schedules outages, error
//!   bursts and latency storms on the plan's *virtual* clock (a pure
//!   function of the prompt), never the wall clock: the same seed reproduces
//!   the same faults, and latency storms stretch only wall-clock round
//!   trips, never reported latency accounting.
//!
//! # Latency tracking and hedged requests (tail-latency control)
//!
//! Every backend slot keeps a lock-free exponentially-weighted moving
//! average of its *measured* request latency (wall-clock time around
//! [`Backend::complete`], updated on success only — distinct from
//! [`BackendStats::latency_ms`], which accumulates the *reported* simulated
//! latencies). The EWMA powers two mechanisms:
//!
//! * [`llmsql_types::RoutingPolicy::LatencyAware`] orders candidates by
//!   ascending EWMA; sample-less backends sort first so a cold pool explores
//!   every member once before settling on the fastest.
//! * **Hedged requests** ([`BackendPool::with_hedging`]). A request is *late*
//!   once it has been in flight longer than
//!   `multiplier × (lowest EWMA among healthy backends)`, floored at
//!   `min_ms`. A late request gets exactly one duplicate ("hedge") on a
//!   different healthy backend; the first success wins and the loser is
//!   **cancelled by abandonment** — its thread runs to completion but its
//!   response is discarded.
//!
//! The hedging contract:
//!
//! * **A hedge may fire only when** (a) hedging is enabled
//!   (`multiplier > 0`) and the pool has ≥ 2 backends, (b) at least one
//!   healthy backend has a latency sample (otherwise "late" is undefined and
//!   the request falls back to the plain candidate walk), (c) the primary's
//!   breaker is closed, (d) the primary is unsampled (exploration) or its
//!   own EWMA predicts it will exceed the threshold — requests expected to
//!   finish on time take the plain walk and pay no per-request thread
//!   spawn, and (e) the hedge admission gate grants capacity
//!   ([`BackendPool::set_hedge_permit_gate`] — wired to
//!   `CallSlots::try_acquire_owned` under a cross-query scheduler, so a
//!   hedge only ever uses *spare* slot capacity and never queues behind
//!   planned work).
//! * **Rows can never change**: pooled backends are fingerprint-equal
//!   (contract rule 1), so primary and hedge produce byte-identical text;
//!   whichever wins, the caller sees the same completion.
//! * **Budget/slot semantics**: a hedge is a *physical* attempt — it shows
//!   up in [`BackendStats::hedges`] / [`BackendStats::hedges_won`] and the
//!   per-backend call counters, holds one call slot (the permit) for its
//!   whole flight, but never consumes the engine's logical `max_llm_calls`
//!   budget (which counts prompts, like retries). One caveat: when a hedge
//!   wins, the abandoned primary's tail keeps running after the caller's
//!   slot is released, so global in-flight can transiently exceed the slot
//!   pool by the number of hedges currently winning.
//! * Hedging, like the breaker, trades physical-trace reproducibility for
//!   latency: whether a hedge fires depends on wall-clock timing. Completion
//!   text, rows, and logical call counts are unaffected.
//!
//! # Non-blocking dispatch (`submit` / [`CallHandle`])
//!
//! [`Backend::complete`] blocks its calling thread for the whole round trip,
//! which pins one OS thread per in-flight request. [`Backend::submit`] is the
//! completion-based alternative: it returns a [`CallHandle`] immediately, and
//! the caller polls the handle (typically from an event loop such as
//! `llmsql_exec::reactor`) until the result is ready. The contract:
//!
//! * `submit` must not block on the simulated/remote round trip. The default
//!   implementation is a **blocking adapter** — it runs `complete` inline and
//!   returns an already-resolved handle — so every existing backend keeps
//!   working unchanged; backends that can separate *computing* a response
//!   from *waiting out* its latency (like [`RemoteLlm`]) override it and
//!   return a timer-backed handle. [`Backend::supports_async`] advertises
//!   which case a backend is.
//! * [`CallHandle::poll`] is non-blocking and returns the result exactly once
//!   (`None` while pending, and again after the result was taken);
//!   [`CallHandle::next_wakeup`] tells the event loop when polling can next
//!   make progress, so a parked worker never spins.
//! * **Cancellation is dropping the handle.** A dropped in-flight handle
//!   releases its per-backend `in_flight` gauge and (for a half-open probe)
//!   the breaker's probe flag; nothing keeps running on another thread. This
//!   is what makes hedge-loser abandonment free in the async path.
//!
//! [`BackendPool`] exposes the same shape one level up:
//! [`BackendPool::submit_call`] returns a [`PoolCall`] — a poll-driven state
//! machine that performs the *entire* routing protocol (candidate walk,
//! bounded retry with backoff timers, breaker skips and probes, and
//! **timer-armed hedging**) without blocking or spawning. Timer-armed hedging
//! closes a gap in the blocking path: because arming a timer costs nothing,
//! *every* hedgeable request gets one, so a one-off stall on a usually-fast
//! backend is hedged too — not just requests whose backend was already
//! expected to be late.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use llmsql_types::{
    AtomicEwmaMs, BackendSpec, ChaosEffect, ChaosPlan, Error, LlmCostModel, Result, RoutingPolicy,
};

use crate::model::{CompletionRequest, CompletionResponse, LanguageModel};
use crate::noise::hash01;

/// A poll-driven completion state machine: anything that makes progress when
/// polled and can tell an event loop when to poll it next. [`PoolCall`] is
/// the main implementation; [`CallHandle::machine`] wraps one as a handle.
pub trait CallMachine: Send {
    /// Attempt to make progress. Returns the final result exactly once;
    /// `None` while pending (and again after the result was taken).
    fn poll(&mut self, now: Instant) -> Option<Result<CompletionResponse>>;

    /// The earliest instant at which [`CallMachine::poll`] can make further
    /// progress, or `None` when it should be polled immediately.
    fn next_wakeup(&self, now: Instant) -> Option<Instant>;
}

/// The completion handle returned by [`Backend::submit`] /
/// `LanguageModel::submit`: a one-shot, poll-based future for a single
/// logical completion. See the module docs ("Non-blocking dispatch") for the
/// poll/cancel contract.
pub struct CallHandle {
    inner: HandleInner,
}

enum HandleInner {
    /// Already resolved (the blocking-adapter case).
    Ready(Option<Result<CompletionResponse>>),
    /// Resolved, but not observable before `ready_at` (a simulated round
    /// trip represented as a timer instead of a sleeping thread).
    Timed {
        ready_at: Instant,
        result: Option<Result<CompletionResponse>>,
    },
    /// Driven by a nested state machine (e.g. a [`PoolCall`]).
    Machine(Box<dyn CallMachine>),
}

impl CallHandle {
    /// An already-resolved handle (the blocking adapter).
    pub fn ready(result: Result<CompletionResponse>) -> CallHandle {
        CallHandle {
            inner: HandleInner::Ready(Some(result)),
        }
    }

    /// A handle whose (precomputed) result becomes observable at `ready_at`.
    pub fn timed(result: Result<CompletionResponse>, ready_at: Instant) -> CallHandle {
        CallHandle {
            inner: HandleInner::Timed {
                ready_at,
                result: Some(result),
            },
        }
    }

    /// A handle driven by a nested [`CallMachine`].
    pub fn machine(machine: Box<dyn CallMachine>) -> CallHandle {
        CallHandle {
            inner: HandleInner::Machine(machine),
        }
    }

    /// Non-blocking progress check; returns the result exactly once.
    pub fn poll(&mut self, now: Instant) -> Option<Result<CompletionResponse>> {
        match &mut self.inner {
            HandleInner::Ready(result) => result.take(),
            HandleInner::Timed { ready_at, result } => {
                if now >= *ready_at {
                    result.take()
                } else {
                    None
                }
            }
            HandleInner::Machine(machine) => machine.poll(now),
        }
    }

    /// When the next [`CallHandle::poll`] can make progress (`None` = now).
    pub fn next_wakeup(&self, now: Instant) -> Option<Instant> {
        match &self.inner {
            HandleInner::Ready(_) => None,
            HandleInner::Timed { ready_at, .. } => Some(*ready_at),
            HandleInner::Machine(machine) => machine.next_wakeup(now),
        }
    }
}

/// One completion endpoint. See the module docs for the full contract.
pub trait Backend: Send + Sync {
    /// Unique endpoint name within a pool (shows up in per-backend metrics).
    fn id(&self) -> &str;

    /// Serve one attempt of a request. `attempt` is the zero-based ordinal of
    /// this attempt *on this backend* for this request; deterministic
    /// backends derive transient-failure decisions from it (contract rule 2).
    fn complete(&self, request: &CompletionRequest, attempt: usize) -> Result<CompletionResponse>;

    /// Non-blocking submission of one attempt (see the module docs). The
    /// default is the blocking adapter: `complete` runs inline and the handle
    /// comes back already resolved, so existing backends work unchanged.
    fn submit(&self, request: &CompletionRequest, attempt: usize) -> CallHandle {
        CallHandle::ready(self.complete(request, attempt))
    }

    /// True when [`Backend::submit`] returns without blocking on the round
    /// trip (i.e. the backend overrides the default blocking adapter).
    fn supports_async(&self) -> bool {
        false
    }

    /// Semantic fingerprint of the model this endpoint serves (contract
    /// rule 1). Pools require all members to agree.
    fn fingerprint(&self) -> String;

    /// This endpoint's pricing/latency model (cost-aware routing reads it).
    fn cost_model(&self) -> LlmCostModel {
        LlmCostModel::default()
    }

    /// The served model's observed cardinality of `table`, if the endpoint
    /// reports one (see [`LanguageModel::relation_cardinality`]).
    fn relation_cardinality(&self, _table: &str) -> Option<u64> {
        None
    }
}

/// A deterministic "remote-like" endpoint: wraps a shared [`LanguageModel`]
/// (the completion text source) and layers endpoint behaviour on top —
/// simulated network latency, deterministic transient errors, and its own
/// pricing. Built from a [`BackendSpec`] via [`RemoteLlm::from_spec`].
pub struct RemoteLlm {
    id: String,
    inner: Arc<dyn LanguageModel>,
    latency_ms: f64,
    error_rate: f64,
    cost_model: LlmCostModel,
    seed: u64,
    /// Optional chaos schedule (outages, error bursts, latency storms). The
    /// effect for a prompt is a pure function of `(plan, backend id, prompt)`
    /// — fault injection keeps contract rule 2 intact.
    chaos: Option<Arc<ChaosPlan>>,
}

impl RemoteLlm {
    /// Wrap `inner` as the endpoint described by `spec`. `seed` drives the
    /// deterministic error stream (usually the engine seed).
    pub fn from_spec(inner: Arc<dyn LanguageModel>, spec: &BackendSpec, seed: u64) -> Self {
        RemoteLlm {
            id: spec.name.clone(),
            inner,
            latency_ms: spec.latency_ms.max(0.0),
            error_rate: spec.error_rate.clamp(0.0, 1.0),
            cost_model: spec.cost_model,
            seed,
            chaos: None,
        }
    }

    /// Builder-style: subject this endpoint to a [`ChaosPlan`]. Outage and
    /// flapping windows make attempts fail deterministically, error bursts
    /// raise the effective error rate, and latency storms / slow drips scale
    /// the *wall-clock* round trip (reported latency accounting is
    /// unaffected, so cost/latency metrics stay chaos-independent).
    pub fn with_chaos(mut self, plan: Arc<ChaosPlan>) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// The chaos effect governing `prompt` on this endpoint (none → benign).
    fn chaos_effect(&self, prompt: &str) -> ChaosEffect {
        match &self.chaos {
            Some(plan) => plan.effect_for_prompt(&self.id, prompt),
            None => ChaosEffect::NONE,
        }
    }

    /// Does attempt `attempt` of `prompt` fail on this endpoint? Pure
    /// function of `(backend id, prompt, attempt, seed, chaos plan)` —
    /// contract rule 2 holds with fault injection active.
    fn attempt_fails(&self, prompt: &str, attempt: usize) -> bool {
        let effect = self.chaos_effect(prompt);
        if effect.down {
            return true;
        }
        if effect.error_rate > 0.0
            && hash01(
                &["chaos_error", &self.id, prompt, &attempt.to_string()],
                self.seed,
            ) < effect.error_rate
        {
            return true;
        }
        if self.error_rate >= 1.0 {
            return true;
        }
        if self.error_rate <= 0.0 {
            return false;
        }
        hash01(
            &["backend_error", &self.id, prompt, &attempt.to_string()],
            self.seed,
        ) < self.error_rate
    }

    /// This endpoint's wall-clock simulated round trip for `prompt`,
    /// milliseconds: the spec latency scaled by any active latency storm.
    fn effective_latency_ms(&self, prompt: &str) -> f64 {
        self.latency_ms * self.chaos_effect(prompt).latency_factor
    }

    /// The deterministic outcome of one attempt — the failure decision plus,
    /// on success, the inner model's completion re-priced with this
    /// endpoint's own cost model; the text is the inner model's verbatim
    /// (contract rule 1). Reported latency covers this endpoint's network
    /// round trip too, so a slow backend is distinguishable from a fast one
    /// in per-backend metrics. Shared by the blocking and async paths, so
    /// both produce byte-identical responses and failure traces.
    fn attempt_outcome(
        &self,
        request: &CompletionRequest,
        attempt: usize,
    ) -> Result<CompletionResponse> {
        if self.attempt_fails(&request.prompt, attempt) {
            return Err(Error::llm(format!(
                "backend '{}' failed attempt {attempt} (simulated endpoint error)",
                self.id
            )));
        }
        let response = self.inner.complete(request)?;
        Ok(reprice_response(self.cost_model, self.latency_ms, response))
    }
}

/// Re-price an inner model's completion as served by one endpoint: the
/// endpoint's own cost model, with the endpoint's network round trip folded
/// into the reported latency. The text stays the inner model's verbatim
/// (contract rule 1).
fn reprice_response(
    cost_model: LlmCostModel,
    endpoint_latency_ms: f64,
    response: CompletionResponse,
) -> CompletionResponse {
    let cost_usd = cost_model.request_cost_usd(response.prompt_tokens, response.completion_tokens);
    let latency_ms =
        endpoint_latency_ms + cost_model.request_latency_ms(response.completion_tokens);
    CompletionResponse {
        cost_usd,
        latency_ms,
        ..response
    }
}

/// The async flight of one [`RemoteLlm`] attempt: first the inner model's
/// (possibly timer-backed) completion, then this endpoint's own simulated
/// round trip as a second timer — so a latency-bearing inner model never
/// blocks the reactor thread, and the serial wall time matches the blocking
/// path (inner time + endpoint latency).
struct RemoteCall {
    inner: CallHandle,
    endpoint_latency: Duration,
    cost_model: LlmCostModel,
    endpoint_latency_ms: f64,
    /// The repriced result, held until the endpoint round-trip timer fires.
    staged: Option<(Result<CompletionResponse>, Instant)>,
}

impl CallMachine for RemoteCall {
    fn poll(&mut self, now: Instant) -> Option<Result<CompletionResponse>> {
        if self.staged.is_none() {
            let outcome = self.inner.poll(now)?;
            let repriced = outcome
                .map(|resp| reprice_response(self.cost_model, self.endpoint_latency_ms, resp));
            self.staged = Some((repriced, now + self.endpoint_latency));
        }
        let (_, ready_at) = self.staged.as_ref().expect("just staged");
        if now >= *ready_at {
            Some(self.staged.take().expect("just checked").0)
        } else {
            None
        }
    }

    fn next_wakeup(&self, now: Instant) -> Option<Instant> {
        match &self.staged {
            Some((_, ready_at)) => Some(*ready_at),
            None => self.inner.next_wakeup(now),
        }
    }
}

impl Backend for RemoteLlm {
    fn id(&self) -> &str {
        &self.id
    }

    fn complete(&self, request: &CompletionRequest, attempt: usize) -> Result<CompletionResponse> {
        let round_trip_ms = self.effective_latency_ms(&request.prompt);
        if round_trip_ms > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(round_trip_ms / 1000.0));
        }
        self.attempt_outcome(request, attempt)
    }

    /// Native non-blocking submission: the failure decision is made now, the
    /// inner model is submitted through *its* non-blocking API (so an inner
    /// model with its own simulated latency contributes a timer, not a
    /// sleep), and this endpoint's round trip becomes a second timer on the
    /// returned handle. This is the backend that lets one OS thread hold
    /// arbitrarily many in-flight simulated requests.
    fn submit(&self, request: &CompletionRequest, attempt: usize) -> CallHandle {
        // Chaos latency storms stretch the wall-clock timers; the *reported*
        // latency (and therefore cost/latency accounting) stays the spec's.
        let round_trip_ms = self.effective_latency_ms(&request.prompt);
        if self.attempt_fails(&request.prompt, attempt) {
            let err = Err(Error::llm(format!(
                "backend '{}' failed attempt {attempt} (simulated endpoint error)",
                self.id
            )));
            return if round_trip_ms > 0.0 {
                CallHandle::timed(
                    err,
                    Instant::now() + Duration::from_secs_f64(round_trip_ms / 1000.0),
                )
            } else {
                CallHandle::ready(err)
            };
        }
        CallHandle::machine(Box::new(RemoteCall {
            inner: self.inner.submit(request),
            endpoint_latency: Duration::from_secs_f64(round_trip_ms.max(0.0) / 1000.0),
            cost_model: self.cost_model,
            endpoint_latency_ms: self.latency_ms,
            staged: None,
        }))
    }

    fn supports_async(&self) -> bool {
        true
    }

    fn fingerprint(&self) -> String {
        self.inner.fingerprint()
    }

    fn cost_model(&self) -> LlmCostModel {
        self.cost_model
    }

    fn relation_cardinality(&self, table: &str) -> Option<u64> {
        self.inner.relation_cardinality(table)
    }
}

/// A snapshot of one backend's physical-call counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BackendStats {
    /// Backend name.
    pub id: String,
    /// Physical attempts issued to this backend (including failed ones).
    pub calls: u64,
    /// Attempts that returned an error.
    pub errors: u64,
    /// Attempts that were retries (of any prior failed attempt on this
    /// backend for the same request).
    pub retries: u64,
    /// Sum of reported completion latencies for successful attempts, ms.
    pub latency_ms: f64,
    /// Requests currently being served by this backend.
    pub in_flight: u64,
    /// Requests that skipped this backend because its circuit breaker was
    /// open (each one saved `1 + retries` doomed attempts).
    pub short_circuits: u64,
    /// True while the breaker is not closed (open, or awaiting the outcome
    /// of a half-open probe).
    pub breaker_open: bool,
    /// Hedge requests issued *to* this backend (duplicates of a late request
    /// first dispatched elsewhere). Always zero with hedging disabled.
    pub hedges: u64,
    /// Hedges issued to this backend whose response won the race against the
    /// late primary.
    pub hedges_won: u64,
}

/// Lock-free per-backend counters (see [`BackendStats`] for the snapshot).
#[derive(Default)]
struct SlotCounters {
    calls: AtomicU64,
    errors: AtomicU64,
    retries: AtomicU64,
    /// Latency accumulated in microseconds (an atomic f64 is not portable).
    latency_us: AtomicU64,
    in_flight: AtomicU64,
    short_circuits: AtomicU64,
    hedges: AtomicU64,
    hedges_won: AtomicU64,
    /// EWMA of *measured* successful-request latency, milliseconds.
    ewma: AtomicEwmaMs,
    /// Pool-epoch time (ms, saturated to ≥ 1 so 0 keeps meaning "never") of
    /// the latest EWMA sample — the staleness clock for read-side decay.
    last_sample_ms: AtomicU64,
}

/// Reported completion latency → accumulated microseconds. Rounds to the
/// nearest microsecond instead of truncating (which silently dropped sub-µs
/// remainders on every call) and clamps NaN / negative simulated latencies
/// to zero instead of letting the `f64 → u64` cast produce garbage.
fn round_latency_us(latency_ms: f64) -> u64 {
    let us = (latency_ms * 1000.0).round();
    if us.is_finite() && us > 0.0 {
        us as u64 // saturating cast: an absurd finite latency pins at u64::MAX
    } else {
        0
    }
}

/// Decrements a slot's in-flight gauge on every exit path, including a
/// panicking [`Backend::complete`] (hedged dispatch catches the unwind and
/// must not leave the gauge stuck).
struct InFlightDecrement<'a>(&'a AtomicU64);

impl Drop for InFlightDecrement<'_> {
    fn drop(&mut self) {
        // ordering: Relaxed — the in-flight gauge is an advisory statistic
        // (least-in-flight routing reads it as a hint); no memory is
        // published under it.
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Sentinel value of [`BreakerState::open_until_ms`] marking "a half-open
/// probe is in flight". Encoding the probe claim *in the same word* as the
/// cooldown expiry is what makes probe admission race-free: claiming the
/// probe is a compare-exchange on the exact expiry the claimant observed, so
/// a racer holding a stale expiry (including one from a previous cooldown
/// window) can never slip a second probe through.
const PROBE_IN_FLIGHT: u64 = u64::MAX;

/// Circuit-breaker state of one backend. Lock-free: the candidate walk reads
/// it on every request.
///
/// The whole open/half-open protocol lives in one atomic word,
/// `open_until_ms`: `0` = closed, [`PROBE_IN_FLIGHT`] = a probe owns the
/// half-open window, anything else = open until that pool-epoch time.
#[derive(Default)]
struct BreakerState {
    /// Failed attempts since the last success.
    consecutive_errors: AtomicU64,
    /// `0` = closed. [`PROBE_IN_FLIGHT`] = cooldown expired and exactly one
    /// probe request is in flight. Otherwise the pool-epoch-relative time
    /// (ms, saturated to at least 1 so it never collides with the closed
    /// sentinel) at which the cooldown expires and a half-open probe may go
    /// through.
    open_until_ms: AtomicU64,
}

/// What the breaker allows for the next request on a backend.
#[derive(Debug, PartialEq)]
enum Admission {
    /// Breaker closed: attempt normally.
    Normal,
    /// Cooldown elapsed: this request is the single half-open probe.
    Probe,
    /// Breaker open: skip the backend.
    Skip,
}

impl BreakerState {
    fn admission(&self, now_ms: u64) -> Admission {
        // ordering: Acquire — pairs with the Release stores in open()/
        // on_success(); a caller that observes "closed" also observes the
        // error-count reset that preceded it.
        let open_until = self.open_until_ms.load(Ordering::Acquire);
        if open_until == 0 {
            return Admission::Normal;
        }
        if open_until == PROBE_IN_FLIGHT || now_ms < open_until {
            return Admission::Skip;
        }
        // Cooldown elapsed: let exactly one caller through as the probe.
        // The compare-exchange is against the expiry this caller *observed*,
        // so of N racers exactly one wins; the rest fail (the word now holds
        // the sentinel — or a fresh expiry if the probe already resolved)
        // and keep skipping. In particular a racer that passed the expiry
        // check just before a failed probe re-opened the breaker can no
        // longer claim a second probe inside the new cooldown window: its
        // stale expiry no longer matches.
        // ordering: AcqRel on success — the winner both acquires the state
        // the opener published and releases its probe claim to whoever
        // resolves it; Acquire on failure so the loser sees the up-to-date
        // word when it skips.
        if self
            .open_until_ms
            .compare_exchange(
                open_until,
                PROBE_IN_FLIGHT,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            Admission::Probe
        } else {
            Admission::Skip
        }
    }

    fn on_success(&self) {
        // ordering: Release ×2 — the error-count reset must be visible
        // before the "closed" word is; pairs with the Acquire load in
        // admission(), so a closed breaker is never seen with a stale
        // pre-reset error count.
        self.consecutive_errors.store(0, Ordering::Release);
        self.open_until_ms.store(0, Ordering::Release);
    }

    /// Open the breaker until `now_ms + cooldown_ms`. Saturating: an absurd
    /// (but finite, so validation-passing) cooldown pins the expiry just
    /// below [`PROBE_IN_FLIGHT`] instead of overflowing (or colliding with
    /// the sentinel, which would read as a phantom probe).
    fn open(&self, now_ms: u64, cooldown_ms: f64) {
        let cooldown = cooldown_ms.max(0.0) as u64; // f64→u64 casts saturate
                                                    // ordering: Release — publishes the expiry (and the error history
                                                    // before it) to admission()'s Acquire load; the probe CAS there is
                                                    // against this exact value.
        self.open_until_ms.store(
            now_ms
                .saturating_add(cooldown)
                .clamp(1, PROBE_IN_FLIGHT - 1),
            Ordering::Release,
        );
    }

    /// Record a failed attempt; returns true when the breaker is now open
    /// (so the caller stops burning retries on this backend).
    fn on_error(&self, now_ms: u64, threshold: u64, cooldown_ms: f64, was_probe: bool) -> bool {
        // ordering: AcqRel — the RMW must see the latest reset (Acquire,
        // pairs with on_success's Release) and publish the new count before
        // a threshold-crossing open() (Release side); plain Relaxed could
        // fold increments across an unseen reset and open the breaker on
        // stale history.
        let errors = self.consecutive_errors.fetch_add(1, Ordering::AcqRel) + 1;
        // A failed probe goes straight back to open for another cooldown;
        // otherwise the threshold decides.
        if was_probe || (threshold > 0 && errors >= threshold) {
            self.open(now_ms, cooldown_ms);
            return true;
        }
        false
    }

    /// Release an abandoned probe claim (dropped handle, panicking backend):
    /// expire the cooldown immediately so the next request re-probes, instead
    /// of the backend staying short-circuited forever. The compare-exchange
    /// only fires if the claim is still ours — a probe whose outcome already
    /// resolved the breaker (concurrent `open`/`on_success`) is left alone.
    fn abort_probe(&self) {
        // ordering: AcqRel/Acquire — same pairing discipline as the probe
        // claim in admission(); releasing the claim must not be reorderable
        // before the work the probe abandoned.
        let _ = self.open_until_ms.compare_exchange(
            PROBE_IN_FLIGHT,
            1,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }
}

/// Unwind guard for the half-open probe: if `Backend::complete` panics while
/// serving the probe, the probe claim is released on the way out so the
/// backend is probed again immediately instead of being short-circuited
/// forever. Defused on every normal path ([`BreakerState`]'s
/// `on_success`/`on_error` resolve the claim there).
struct ProbeAbortGuard<'a> {
    breaker: &'a BreakerState,
    armed: bool,
}

impl Drop for ProbeAbortGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.breaker.abort_probe();
        }
    }
}

/// The per-backend state hedge worker threads need to outlive a single
/// `complete` call (counters and breaker live behind one `Arc`).
#[derive(Default)]
struct SlotShared {
    counters: SlotCounters,
    breaker: BreakerState,
}

impl SlotShared {
    /// Record one successful attempt: reported-latency accumulator, the
    /// measured-latency EWMA (plus its staleness clock for decayed reads),
    /// and the breaker reset. Shared by the blocking walk, the hedge worker
    /// threads and the async [`PoolCall`] machine so all three account
    /// identically.
    ///
    /// A sample landing after the estimate went stale (idle ≥ 2 decay
    /// half-lives) *replaces* the average instead of merging into it: the
    /// decayed read already declared the old value untrustworthy, so letting
    /// it drag the fresh observation would keep a recovered backend pinned
    /// to its obsolete history for many more samples.
    fn record_success(
        &self,
        reported_latency_ms: f64,
        measured_ms: f64,
        now_ms: u64,
        decay_half_life_ms: f64,
    ) {
        // ordering: Relaxed — latency_us is a monotone statistic;
        // last_sample_ms is a freshness hint where a stale read only makes
        // one sample merge instead of replace (both outcomes valid).
        self.counters
            .latency_us
            .fetch_add(round_latency_us(reported_latency_ms), Ordering::Relaxed);
        let last = self.counters.last_sample_ms.load(Ordering::Relaxed);
        let stale = decay_half_life_ms > 0.0
            && last != 0
            && now_ms.saturating_sub(last) as f64 >= 2.0 * decay_half_life_ms;
        if stale {
            self.counters.ewma.set(measured_ms);
        } else {
            self.counters.ewma.observe(measured_ms);
        }
        // ordering: Relaxed — freshness hint, see the load above.
        self.counters
            .last_sample_ms
            .store(now_ms.max(1), Ordering::Relaxed);
    }

    /// Record one failed attempt; returns true when the breaker just opened
    /// (so the caller fails over instead of burning retries).
    fn record_error(&self, now_ms: u64, threshold: u64, cooldown_ms: f64, probe: bool) -> bool {
        // ordering: Relaxed — statistics counter; breaker decisions use the
        // separately-ordered BreakerState word, not this.
        self.counters.errors.fetch_add(1, Ordering::Relaxed);
        threshold > 0 && self.breaker.on_error(now_ms, threshold, cooldown_ms, probe)
    }

    /// The latency EWMA discounted for staleness (see
    /// [`AtomicEwmaMs::decayed`]): `half_life_ms` of idle time halves the
    /// estimate, so a backend whose scary average chased routing away decays
    /// back into contention and gets re-probed.
    fn decayed_ewma(&self, now_ms: u64, half_life_ms: f64) -> Option<f64> {
        // ordering: Relaxed — freshness hint read; a stale value only skews
        // the advisory decay estimate.
        let last = self.counters.last_sample_ms.load(Ordering::Relaxed);
        let idle_ms = if last == 0 {
            0.0
        } else {
            now_ms.saturating_sub(last) as f64
        };
        self.counters.ewma.decayed(idle_ms, half_life_ms)
    }
}

struct PoolSlot {
    backend: Arc<dyn Backend>,
    shared: Arc<SlotShared>,
}

/// Admission gate for hedge dispatch: invoked right before a hedge fires and
/// expected to return a permit (any RAII guard — held for the hedge's whole
/// flight) when spare capacity exists *right now*, or `None` to veto the
/// hedge. The engine wires this to `CallSlots::try_acquire_owned` under a
/// cross-query scheduler so hedges never queue behind planned work; with no
/// gate attached, hedges are always admitted.
pub type HedgePermitGate = Arc<dyn Fn() -> Option<Box<dyn std::any::Any + Send>> + Send + Sync>;

/// A registry of semantically identical backends with routing and failover.
///
/// The pool implements [`LanguageModel`], so an [`crate::LlmClient`] can wrap
/// it exactly like a single model: caching, single-flight dedup and usage
/// accounting all see one *logical* endpoint, while physical attempts spread
/// across the members.
pub struct BackendPool {
    slots: Vec<PoolSlot>,
    policy: RoutingPolicy,
    rr_cursor: AtomicUsize,
    /// Retries per backend before failing over (bounded retry).
    retries: usize,
    /// Exponential backoff base between attempts, milliseconds.
    backoff_base_ms: f64,
    /// Circuit breaker: consecutive errors that open a backend's breaker
    /// (0 = breaker disabled).
    breaker_threshold: u64,
    /// Circuit breaker: cooldown before a half-open probe, milliseconds.
    breaker_cooldown_ms: f64,
    /// Hedged requests: lateness threshold as a multiple of the pool's
    /// lowest latency EWMA (0 = hedging disabled).
    hedge_multiplier: f64,
    /// Hedged requests: floor on the lateness threshold, milliseconds.
    hedge_min_ms: f64,
    /// Hedge admission gate (see [`HedgePermitGate`]); `None` = always admit.
    hedge_gate: parking_lot::Mutex<Option<HedgePermitGate>>,
    /// Half-life for read-side decay of the latency EWMAs, milliseconds
    /// (0 disables decay). See [`BackendPool::with_latency_decay`].
    decay_half_life_ms: f64,
    /// Monotonic base for the breakers' cooldown clocks.
    epoch: Instant,
}

/// The dispatch decision for one hedged request.
struct HedgePlan {
    /// Candidate index serving the primary attempt.
    primary: usize,
    /// Candidate index the hedge goes to if the primary is late.
    hedge: usize,
    /// In-flight time after which the primary counts as late, milliseconds.
    threshold_ms: f64,
}

/// Hard cap on a single backoff sleep so a misconfigured base cannot stall
/// a scan worker for seconds.
const BACKOFF_CAP_MS: f64 = 100.0;

/// Default half-life for read-side decay of the latency EWMAs. Long enough
/// that decay is invisible within one query (sub-second), short enough that
/// a backend sidelined by a stale scary average re-enters contention within
/// a few seconds of idling.
const DEFAULT_DECAY_HALF_LIFE_MS: f64 = 2_000.0;

impl BackendPool {
    /// Build a pool. Fails on an empty backend list, duplicate ids, or
    /// members whose [`Backend::fingerprint`]s disagree (which would let
    /// routing change query results — contract rule 1).
    pub fn new(backends: Vec<Arc<dyn Backend>>, policy: RoutingPolicy) -> Result<Self> {
        if backends.is_empty() {
            return Err(Error::config("a backend pool needs at least one backend"));
        }
        let fingerprint = backends[0].fingerprint();
        let mut seen = std::collections::BTreeSet::new();
        for backend in &backends {
            if !seen.insert(backend.id().to_string()) {
                return Err(Error::config(format!(
                    "duplicate backend id '{}' in pool",
                    backend.id()
                )));
            }
            let fp = backend.fingerprint();
            if fp != fingerprint {
                return Err(Error::config(format!(
                    "backend '{}' serves a different model ({fp} != {fingerprint}); \
                     pooled backends must be semantically identical",
                    backend.id()
                )));
            }
        }
        Ok(BackendPool {
            slots: backends
                .into_iter()
                .map(|backend| PoolSlot {
                    backend,
                    shared: Arc::new(SlotShared::default()),
                })
                .collect(),
            policy,
            rr_cursor: AtomicUsize::new(0),
            retries: 1,
            backoff_base_ms: 1.0,
            breaker_threshold: 0,
            breaker_cooldown_ms: 250.0,
            hedge_multiplier: 0.0,
            hedge_min_ms: 1.0,
            hedge_gate: parking_lot::Mutex::new(None),
            decay_half_life_ms: DEFAULT_DECAY_HALF_LIFE_MS,
            epoch: Instant::now(),
        })
    }

    /// Build a pool of [`RemoteLlm`] endpoints over one shared model, one per
    /// spec. `seed` drives the deterministic per-backend error streams.
    pub fn from_specs(
        inner: Arc<dyn LanguageModel>,
        specs: &[BackendSpec],
        policy: RoutingPolicy,
        seed: u64,
    ) -> Result<Self> {
        BackendPool::from_specs_with_chaos(inner, specs, policy, seed, None)
    }

    /// [`BackendPool::from_specs`], with every member additionally subjected
    /// to a shared [`ChaosPlan`] (see [`RemoteLlm::with_chaos`]). The plan is
    /// validated once here so a malformed window fails construction, not a
    /// request.
    pub fn from_specs_with_chaos(
        inner: Arc<dyn LanguageModel>,
        specs: &[BackendSpec],
        policy: RoutingPolicy,
        seed: u64,
        chaos: Option<ChaosPlan>,
    ) -> Result<Self> {
        if let Some(plan) = &chaos {
            plan.validate()?;
        }
        let chaos = chaos.map(Arc::new);
        let backends = specs
            .iter()
            .map(|spec| {
                spec.validate()?;
                let mut remote = RemoteLlm::from_spec(Arc::clone(&inner), spec, seed);
                if let Some(plan) = &chaos {
                    remote = remote.with_chaos(Arc::clone(plan));
                }
                Ok(Arc::new(remote) as Arc<dyn Backend>)
            })
            .collect::<Result<Vec<_>>>()?;
        BackendPool::new(backends, policy)
    }

    /// Builder-style: retries per backend before failing over (default 1).
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Builder-style: exponential backoff base in milliseconds (default 1.0;
    /// each retry doubles it, capped at 100ms). Zero disables backoff sleeps.
    pub fn with_backoff_base_ms(mut self, base_ms: f64) -> Self {
        self.backoff_base_ms = base_ms.max(0.0);
        self
    }

    /// Builder-style: enable the circuit breaker — open a backend after
    /// `threshold` consecutive failed attempts and allow one half-open probe
    /// after `cooldown_ms` (see the module docs). `threshold == 0` disables
    /// the breaker (the default).
    pub fn with_breaker(mut self, threshold: usize, cooldown_ms: f64) -> Self {
        self.breaker_threshold = threshold as u64;
        self.breaker_cooldown_ms = cooldown_ms.max(0.0);
        self
    }

    /// Builder-style: enable hedged requests (see the module docs for the
    /// full contract). A request late by `multiplier ×` the pool's lowest
    /// latency EWMA (floored at `min_ms`) gets one duplicate on a different
    /// healthy backend; first success wins. `multiplier == 0` disables
    /// hedging (the default).
    pub fn with_hedging(mut self, multiplier: f64, min_ms: f64) -> Self {
        self.hedge_multiplier = multiplier.max(0.0);
        self.hedge_min_ms = min_ms.max(0.0);
        self
    }

    /// Builder-style: half-life (ms) for read-side decay of the latency
    /// EWMAs. Every read that drives a decision —
    /// [`llmsql_types::RoutingPolicy::LatencyAware`] ordering, hedge
    /// thresholds, [`BackendPool::latency_ewma_ms`] — discounts a backend's
    /// average by half per `half_life_ms` since its last sample. This fixes
    /// the latency-aware cold-trap: a backend that was slow (or tripped its
    /// breaker) once would otherwise keep its scary average forever, never
    /// receive traffic, and so never get the fresh sample proving it
    /// recovered. Decay is on by default (2s half-life); 0 disables it.
    pub fn with_latency_decay(mut self, half_life_ms: f64) -> Self {
        self.decay_half_life_ms = half_life_ms.max(0.0);
        self
    }

    /// Install (or clear) the hedge admission gate. Under a cross-query
    /// scheduler the engine wires this to the global call-slot pool's
    /// non-blocking acquire, so hedges only ever use spare slot capacity.
    pub fn set_hedge_permit_gate(&self, gate: Option<HedgePermitGate>) {
        *self.hedge_gate.lock() = gate;
    }

    /// Number of backends in the pool.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the pool has no backends (never, per [`BackendPool::new`]).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The routing policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Per-backend counter snapshots, in registration order.
    pub fn stats(&self) -> Vec<BackendStats> {
        self.slots
            .iter()
            .map(|slot| {
                let counters = &slot.shared.counters;
                // ordering: Relaxed throughout — advisory statistics
                // snapshot; fields are individually monotone but not
                // mutually consistent mid-flight (tests needing exact
                // totals quiesce the pool first). breaker_open is a hint
                // here; admission() does the Acquire read that decides.
                BackendStats {
                    id: slot.backend.id().to_string(),
                    calls: counters.calls.load(Ordering::Relaxed),
                    errors: counters.errors.load(Ordering::Relaxed),
                    retries: counters.retries.load(Ordering::Relaxed),
                    latency_ms: counters.latency_us.load(Ordering::Relaxed) as f64 / 1000.0,
                    in_flight: counters.in_flight.load(Ordering::Relaxed),
                    short_circuits: counters.short_circuits.load(Ordering::Relaxed),
                    breaker_open: slot.shared.breaker.open_until_ms.load(Ordering::Relaxed) != 0,
                    hedges: counters.hedges.load(Ordering::Relaxed),
                    hedges_won: counters.hedges_won.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// The measured latency EWMA per backend (registration order), `None`
    /// before a backend's first successful request. Kept out of
    /// [`BackendStats`] because it is wall-clock-measured and would break
    /// trace-reproducibility comparisons of deterministic counter snapshots.
    ///
    /// Reads are staleness-decayed ([`BackendPool::with_latency_decay`]):
    /// what this returns is exactly the estimate routing and hedging act on,
    /// so an idle backend's entry visibly drifts back toward zero.
    pub fn latency_ewma_ms(&self) -> Vec<(String, Option<f64>)> {
        let now_ms = self.now_ms();
        self.slots
            .iter()
            .map(|slot| {
                (
                    slot.backend.id().to_string(),
                    slot.shared.decayed_ewma(now_ms, self.decay_half_life_ms),
                )
            })
            .collect()
    }

    /// Milliseconds since pool creation (the breakers' cooldown clock).
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Candidate order for the next request under the configured policy.
    fn candidate_order(&self, request: &CompletionRequest) -> Vec<usize> {
        let n = self.slots.len();
        let mut order: Vec<usize> = (0..n).collect();
        match self.policy {
            RoutingPolicy::RoundRobin => {
                // ordering: Relaxed — the cursor only needs per-increment
                // uniqueness to spread starts; no memory rides on it.
                let start = self.rr_cursor.fetch_add(1, Ordering::Relaxed) % n;
                order.rotate_left(start);
            }
            RoutingPolicy::LeastInFlight => {
                order.sort_by_key(|&i| {
                    (
                        self.slots[i]
                            .shared
                            .counters
                            .in_flight
                            // ordering: Relaxed — load-balancing hint; a
                            // stale gauge only mis-ranks one candidate walk.
                            .load(Ordering::Relaxed),
                        i,
                    )
                });
            }
            RoutingPolicy::LatencyAware => {
                // Lowest measured EWMA first; backends without a sample sort
                // ahead of everything (0.0 < any clamped sample) so a cold
                // pool explores each member once before settling. Reads are
                // staleness-decayed, so a sidelined backend's average drifts
                // down until it wins a probe request and refreshes itself.
                let now_ms = self.now_ms();
                order.sort_by(|&a, &b| {
                    let ewma = |i: usize| {
                        self.slots[i]
                            .shared
                            .decayed_ewma(now_ms, self.decay_half_life_ms)
                            .unwrap_or(0.0)
                    };
                    ewma(a).total_cmp(&ewma(b)).then(a.cmp(&b))
                });
            }
            RoutingPolicy::CostAware => {
                order.sort_by(|&a, &b| {
                    let price = |i: usize| {
                        let m = self.slots[i].backend.cost_model();
                        m.usd_per_1k_prompt_tokens + m.usd_per_1k_completion_tokens
                    };
                    price(a).total_cmp(&price(b)).then(a.cmp(&b))
                });
            }
            RoutingPolicy::PromptHash => {
                // The start index is a pure function of the prompt text, so
                // the backend serving each prompt (and the whole physical
                // trace) is reproducible at any parallelism.
                let start = (hash01(&["route", &request.prompt], 0) * n as f64) as usize % n;
                order.rotate_left(start);
            }
        }
        order
    }

    /// Route one request. With hedging enabled and a viable hedge plan, the
    /// request goes through hedged dispatch; otherwise it takes the plain
    /// candidate walk with bounded retry, backoff and breaker skips. Either
    /// way the caller sees exactly one logical completion (or the last error
    /// once every candidate is exhausted).
    fn route(&self, request: &CompletionRequest) -> Result<CompletionResponse> {
        let order = self.candidate_order(request);
        if self.hedge_multiplier > 0.0 {
            if let Some(plan) = self.hedge_plan(&order) {
                return self.route_hedged(request, &order, plan);
            }
        }
        self.route_walk(request, &order)
    }

    /// The plain candidate walk: bounded per-backend retry with exponential
    /// backoff, skipping backends whose circuit breaker is open. Physical
    /// attempts are recorded in the per-backend counters.
    fn route_walk(
        &self,
        request: &CompletionRequest,
        order: &[usize],
    ) -> Result<CompletionResponse> {
        let mut last_err = None;
        let mut short_circuited = 0usize;
        for &idx in order {
            let slot = &self.slots[idx];
            let probe = if self.breaker_threshold > 0 {
                match slot.shared.breaker.admission(self.now_ms()) {
                    Admission::Skip => {
                        // ordering: Relaxed — statistics counter.
                        slot.shared
                            .counters
                            .short_circuits
                            .fetch_add(1, Ordering::Relaxed);
                        short_circuited += 1;
                        continue;
                    }
                    Admission::Probe => true,
                    Admission::Normal => false,
                }
            } else {
                false
            };
            // A half-open probe is a single attempt: burning the retry budget
            // on a backend still suspected down defeats the breaker.
            let max_attempt = if probe { 0 } else { self.retries };
            match run_attempts(
                slot.backend.as_ref(),
                &slot.shared,
                request,
                max_attempt,
                self.backoff_base_ms,
                probe,
                self.breaker_threshold,
                self.breaker_cooldown_ms,
                self.decay_half_life_ms,
                self.epoch,
            ) {
                Ok(response) => return Ok(response),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            if short_circuited > 0 {
                Error::llm(format!(
                    "all {short_circuited} backend(s) are circuit-broken; retry after the cooldown"
                ))
            } else {
                Error::llm("backend pool has no backends")
            }
        }))
    }

    /// Decide whether this request can be hedged, and how (see the module
    /// docs for the conditions). `None` falls back to the plain walk.
    ///
    /// On top of the shared candidate selection ([`Self::hedge_candidates`])
    /// the *blocking* path applies a spawn-free fast-path veto: a primary
    /// whose own (decayed) EWMA predicts an on-time finish skips hedged
    /// dispatch entirely, so the common case pays no worker-thread spawn or
    /// request clone. The async path needs no such veto — arming a timer is
    /// free — which is exactly what makes it catch one-off stalls the
    /// blocking path cannot (timer-armed hedging).
    fn hedge_plan(&self, order: &[usize]) -> Option<HedgePlan> {
        let plan = self.hedge_candidates(order)?;
        let now_ms = self.now_ms();
        if self.slots[plan.primary]
            .shared
            .decayed_ewma(now_ms, self.decay_half_life_ms)
            .is_some_and(|expected_ms| expected_ms <= plan.threshold_ms)
        {
            return None;
        }
        Some(plan)
    }

    /// Hedged dispatch: run the primary on a worker thread; once it is late
    /// per the plan, issue one hedge to a different backend (if the gate
    /// grants capacity) and take the first success. The loser is abandoned —
    /// its thread finishes into a closed channel. Failures still fail over
    /// across the remaining candidates like the plain walk.
    fn route_hedged(
        &self,
        request: &CompletionRequest,
        order: &[usize],
        plan: HedgePlan,
    ) -> Result<CompletionResponse> {
        let (tx, rx) = mpsc::channel::<(bool, Result<CompletionResponse>)>();
        let spawn_worker =
            |idx: usize, is_hedge: bool, permit: Option<Box<dyn std::any::Any + Send>>| {
                let backend = Arc::clone(&self.slots[idx].backend);
                let shared = Arc::clone(&self.slots[idx].shared);
                let request = request.clone();
                let retries = self.retries;
                let backoff_base_ms = self.backoff_base_ms;
                let breaker_threshold = self.breaker_threshold;
                let breaker_cooldown_ms = self.breaker_cooldown_ms;
                let decay_half_life_ms = self.decay_half_life_ms;
                let epoch = self.epoch;
                let tx = tx.clone();
                std::thread::spawn(move || {
                    // Exactly one send per worker, even if the backend panics:
                    // the receiver counts outstanding workers and must never
                    // block on a message that will not come.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_attempts(
                            backend.as_ref(),
                            &shared,
                            &request,
                            retries,
                            backoff_base_ms,
                            false,
                            breaker_threshold,
                            breaker_cooldown_ms,
                            decay_half_life_ms,
                            epoch,
                        )
                    }))
                    .unwrap_or_else(|_| {
                        Err(Error::llm(format!(
                            "backend '{}' panicked while serving a hedged request",
                            backend.id()
                        )))
                    });
                    drop(permit); // hedge slot held for the whole flight
                    let _ = tx.send((is_hedge, result)); // receiver may be gone (abandoned)
                });
            };

        spawn_worker(plan.primary, false, None);
        let mut outstanding = 1usize;
        let mut hedged = false;
        let mut last_err = None;

        match rx.recv_timeout(Duration::from_secs_f64(plan.threshold_ms / 1000.0)) {
            Ok((_, Ok(response))) => return Ok(response),
            Ok((_, Err(e))) => {
                // Primary exhausted its retries before going late: plain
                // failover across the remaining candidates.
                outstanding = 0;
                last_err = Some(e);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // The primary is late. Fire the hedge if capacity is spare.
                if let Some(permit) = self.hedge_permit() {
                    // ordering: Relaxed — statistics counter.
                    self.slots[plan.hedge]
                        .shared
                        .counters
                        .hedges
                        .fetch_add(1, Ordering::Relaxed);
                    spawn_worker(plan.hedge, true, Some(permit));
                    outstanding = 2;
                    hedged = true;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Unreachable (workers always send), kept defensive.
                outstanding = 0;
                last_err = Some(Error::llm("hedged dispatch worker vanished"));
            }
        }

        for _ in 0..outstanding {
            match rx.recv() {
                Ok((is_hedge, Ok(response))) => {
                    if is_hedge {
                        // ordering: Relaxed — statistics counter.
                        self.slots[plan.hedge]
                            .shared
                            .counters
                            .hedges_won
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(response);
                }
                Ok((_, Err(e))) => last_err = Some(e),
                Err(_) => {
                    last_err = Some(Error::llm("hedged dispatch worker vanished"));
                    break;
                }
            }
        }

        // Primary (and hedge, if any) failed: fail over across the rest.
        let rest: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| i != plan.primary && !(hedged && i == plan.hedge))
            .collect();
        if rest.is_empty() {
            return Err(last_err.unwrap_or_else(|| Error::llm("backend pool has no backends")));
        }
        self.route_walk(request, &rest)
    }

    /// Consult the hedge admission gate; `Some` carries the permit the hedge
    /// worker holds while in flight (a no-op token when no gate is wired).
    fn hedge_permit(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let gate = self.hedge_gate.lock().clone();
        match gate {
            None => Some(Box::new(())),
            Some(gate) => gate(),
        }
    }

    /// Non-blocking submission: the whole routing protocol — candidate walk,
    /// bounded retry with backoff timers, breaker skips/probes, timer-armed
    /// hedging — as a poll-driven [`PoolCall`] machine. The caller (usually
    /// an event loop holding many of these) polls it to completion; dropping
    /// it mid-flight cancels cleanly. Semantically identical to
    /// [`BackendPool::complete`]: same candidate order, same deterministic
    /// attempt trace, same response text.
    pub fn submit_call(&self, request: &CompletionRequest) -> PoolCall {
        let order = self.candidate_order(request);
        let cands: Vec<PoolCandidate> = order
            .iter()
            .map(|&i| PoolCandidate {
                backend: Arc::clone(&self.slots[i].backend),
                shared: Arc::clone(&self.slots[i].shared),
            })
            .collect();
        // Timer-armed hedge plan: like `hedge_plan`, minus the
        // expected-on-time veto — arming a timer costs nothing here, so even
        // a usually-fast primary is protected against a one-off stall.
        let hedge_plan = if self.hedge_multiplier > 0.0 {
            self.hedge_candidates(&order)
        } else {
            None
        };
        PoolCall {
            request: request.clone(),
            cands,
            retries: self.retries,
            backoff_base_ms: self.backoff_base_ms,
            breaker_threshold: self.breaker_threshold,
            breaker_cooldown_ms: self.breaker_cooldown_ms,
            decay_half_life_ms: self.decay_half_life_ms,
            epoch: self.epoch,
            walk: WalkState::Next,
            pos: 0,
            attempt: 0,
            flight: None,
            hedge_threshold_ms: hedge_plan.as_ref().map(|p| p.threshold_ms),
            hedge_target: hedge_plan.map(|p| {
                order
                    .iter()
                    .position(|&i| i == p.hedge)
                    .expect("hedge target is a member of the candidate order")
            }),
            hedge_fire_at: None,
            hedge_flight: None,
            hedge_used: None,
            hedge_gate: self.hedge_gate.lock().clone(),
            hedge_permit: None,
            last_err: None,
            short_circuited: 0,
        }
    }

    /// The hedge-candidate selection shared by both dispatch paths: a
    /// request is hedgeable when its primary's breaker is closed and a
    /// sampled healthy sibling defines the (decayed-EWMA) lateness floor;
    /// the hedge target is the fastest-known healthy sibling. The blocking
    /// path layers an expected-on-time veto on top ([`Self::hedge_plan`]);
    /// the async path arms a timer for every plan and decides at expiry,
    /// against the primary's *actual* progress.
    fn hedge_candidates(&self, order: &[usize]) -> Option<HedgePlan> {
        if self.slots.len() < 2 {
            return None;
        }
        let breaker_closed = |i: usize| {
            self.breaker_threshold == 0
                || self.slots[i]
                    .shared
                    .breaker
                    .open_until_ms
                    // ordering: Acquire — same pairing as admission(): a
                    // "closed" read implies the preceding reset is visible.
                    .load(Ordering::Acquire)
                    == 0
        };
        let primary = *order.first()?;
        if !breaker_closed(primary) {
            return None;
        }
        let now_ms = self.now_ms();
        let decayed = |i: usize| {
            self.slots[i]
                .shared
                .decayed_ewma(now_ms, self.decay_half_life_ms)
        };
        let floor_ms = order
            .iter()
            .filter(|&&i| breaker_closed(i))
            .filter_map(|&i| decayed(i))
            .fold(f64::INFINITY, f64::min);
        if !floor_ms.is_finite() {
            return None;
        }
        let hedge = order
            .iter()
            .copied()
            .filter(|&i| i != primary && breaker_closed(i))
            .min_by(|&a, &b| {
                let key = |i: usize| decayed(i).unwrap_or(f64::INFINITY);
                key(a).total_cmp(&key(b)).then(a.cmp(&b))
            })?;
        Some(HedgePlan {
            primary,
            hedge,
            threshold_ms: (self.hedge_multiplier * floor_ms).max(self.hedge_min_ms),
        })
    }
}

/// One candidate of a [`PoolCall`], in routing order.
struct PoolCandidate {
    backend: Arc<dyn Backend>,
    shared: Arc<SlotShared>,
}

/// One in-flight attempt inside a [`PoolCall`]: owns the per-backend
/// `in_flight` increment (and, for a half-open probe, the probe flag) so that
/// dropping the flight — cancellation by abandonment — always restores the
/// backend's gauges.
struct Flight {
    handle: CallHandle,
    started: Instant,
    probe: bool,
    shared: Arc<SlotShared>,
    /// True while the in-flight increment is still owed back.
    open: bool,
}

impl Flight {
    fn launch(
        cand: &PoolCandidate,
        request: &CompletionRequest,
        attempt: usize,
        probe: bool,
    ) -> Flight {
        // ordering: Relaxed — calls is a statistic; in_flight is the
        // advisory routing gauge (see InFlightDecrement).
        cand.shared.counters.calls.fetch_add(1, Ordering::Relaxed);
        cand.shared
            .counters
            .in_flight
            .fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        Flight {
            handle: cand.backend.submit(request, attempt),
            started,
            probe,
            shared: Arc::clone(&cand.shared),
            open: true,
        }
    }

    /// Normal resolution: release the in-flight increment; breaker state is
    /// the caller's job (`on_success`/`on_error` own the probe flag there).
    fn close(&mut self) {
        if self.open {
            self.open = false;
            // ordering: Relaxed — advisory routing gauge, pairs with the
            // fetch_add in launch().
            self.shared
                .counters
                .in_flight
                .fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl Drop for Flight {
    fn drop(&mut self) {
        if self.open {
            // ordering: Relaxed — advisory routing gauge, as in close().
            self.shared
                .counters
                .in_flight
                .fetch_sub(1, Ordering::Relaxed);
            if self.probe {
                // An abandoned half-open probe must not wedge the breaker.
                self.shared.breaker.abort_probe();
            }
            self.open = false;
        }
    }
}

/// Where a [`PoolCall`]'s candidate walk currently is.
enum WalkState {
    /// Advance to the next admissible candidate and launch attempt 0.
    Next,
    /// The current candidate has an attempt in flight.
    InFlight,
    /// The current candidate failed a retryable attempt; the next attempt
    /// launches once the backoff timer expires.
    Backoff { until: Instant },
    /// Every candidate is exhausted but a hedge is still in flight — its
    /// outcome decides the call.
    AwaitHedge,
    /// Resolved (result already handed out).
    Done,
}

/// A poll-driven [`BackendPool`] request: the full routing/retry/hedging
/// protocol as a [`CallMachine`], created by [`BackendPool::submit_call`].
///
/// Ownership rules (the completion contract, relied on by
/// `llmsql_exec::reactor`):
///
/// * [`CallMachine::poll`] returns the result exactly once; after that the
///   machine is inert.
/// * Backoff and hedge delays are timers surfaced through
///   [`CallMachine::next_wakeup`], never sleeps — polling is always
///   non-blocking (up to a member backend's own `submit`, which for async
///   backends is compute only).
/// * Dropping the machine mid-flight abandons primary and hedge alike:
///   per-backend `in_flight` gauges, probe flags and the hedge's slot permit
///   are all released by `Drop`.
/// * A fired hedge holds its admission-gate permit for its whole flight and
///   releases it on resolution or abandonment; the loser of the
///   primary/hedge race is dropped, not waited for.
pub struct PoolCall {
    request: CompletionRequest,
    /// Candidates in routing order (index 0 = primary).
    cands: Vec<PoolCandidate>,
    retries: usize,
    backoff_base_ms: f64,
    breaker_threshold: u64,
    breaker_cooldown_ms: f64,
    decay_half_life_ms: f64,
    epoch: Instant,
    walk: WalkState,
    /// Index (into `cands`) of the candidate the walk is currently on.
    pos: usize,
    /// Attempt ordinal on the current candidate.
    attempt: usize,
    flight: Option<Flight>,
    /// Lateness threshold for the armed hedge, ms (`None` = not hedgeable).
    hedge_threshold_ms: Option<f64>,
    /// Candidate index (into `cands`) the hedge would go to.
    hedge_target: Option<usize>,
    /// When the armed hedge timer expires (set when the primary launches).
    hedge_fire_at: Option<Instant>,
    hedge_flight: Option<Flight>,
    /// Candidate index consumed by a fired hedge (excluded from failover).
    hedge_used: Option<usize>,
    hedge_gate: Option<HedgePermitGate>,
    /// The admission permit a fired hedge holds while in flight.
    hedge_permit: Option<Box<dyn std::any::Any + Send>>,
    last_err: Option<Error>,
    short_circuited: usize,
}

impl PoolCall {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Resolve the whole call: abandon whatever is still in flight.
    fn finish(&mut self) {
        self.walk = WalkState::Done;
        self.flight = None; // Drop releases gauges
        self.hedge_flight = None;
        self.hedge_permit = None;
        self.hedge_fire_at = None;
    }

    /// Launch the next attempt on the current candidate (attempt > 0 is a
    /// retry) and arm the hedge timer when this is the primary's first shot.
    fn launch_attempt(&mut self, probe: bool) {
        if self.attempt > 0 {
            // ordering: Relaxed — statistics counter.
            self.cands[self.pos]
                .shared
                .counters
                .retries
                .fetch_add(1, Ordering::Relaxed);
        }
        let flight = Flight::launch(&self.cands[self.pos], &self.request, self.attempt, probe);
        if self.pos == 0 && self.attempt == 0 {
            if let (Some(threshold_ms), Some(_)) = (self.hedge_threshold_ms, self.hedge_target) {
                self.hedge_fire_at =
                    Some(flight.started + Duration::from_secs_f64(threshold_ms / 1000.0));
            }
        }
        self.flight = Some(flight);
        self.walk = WalkState::InFlight;
    }

    /// Drive the hedge side: harvest a finished hedge (a win resolves the
    /// call) and fire the armed timer when it expires while the primary is
    /// still working. Returns the final result when the hedge won.
    fn poll_hedge(&mut self, now: Instant) -> Option<Result<CompletionResponse>> {
        if let Some(flight) = &mut self.hedge_flight {
            if let Some(outcome) = flight.handle.poll(now) {
                let measured_ms =
                    now.saturating_duration_since(flight.started).as_secs_f64() * 1000.0;
                flight.close();
                let shared = Arc::clone(&flight.shared);
                self.hedge_flight = None;
                self.hedge_permit = None; // slot released with the flight
                match outcome {
                    Ok(response) => {
                        shared.record_success(
                            response.latency_ms,
                            measured_ms,
                            self.now_ms(),
                            self.decay_half_life_ms,
                        );
                        if self.breaker_threshold > 0 {
                            shared.breaker.on_success();
                        }
                        // ordering: Relaxed — statistics counter.
                        shared.counters.hedges_won.fetch_add(1, Ordering::Relaxed);
                        self.finish();
                        return Some(Ok(response));
                    }
                    Err(e) => {
                        shared.record_error(
                            self.now_ms(),
                            self.breaker_threshold,
                            self.breaker_cooldown_ms,
                            false,
                        );
                        self.last_err = Some(e);
                    }
                }
            }
            return None;
        }
        // Timer-armed firing: one shot, only while the original primary is
        // still the active candidate (failover has its own protocol), and
        // only with the admission gate's blessing — a veto disarms for good,
        // like the blocking path's single gate consultation.
        if let (Some(fire_at), Some(target)) = (self.hedge_fire_at, self.hedge_target) {
            if now >= fire_at {
                self.hedge_fire_at = None;
                let primary_active = self.pos == 0
                    && matches!(self.walk, WalkState::InFlight | WalkState::Backoff { .. });
                if primary_active && self.hedge_used.is_none() {
                    let permit = match &self.hedge_gate {
                        None => Some(Box::new(()) as Box<dyn std::any::Any + Send>),
                        Some(gate) => gate(),
                    };
                    if let Some(permit) = permit {
                        let cand = &self.cands[target];
                        // ordering: Relaxed — statistics counter.
                        cand.shared.counters.hedges.fetch_add(1, Ordering::Relaxed);
                        self.hedge_permit = Some(permit);
                        self.hedge_flight = Some(Flight::launch(cand, &self.request, 0, false));
                        self.hedge_used = Some(target);
                    }
                }
            }
        }
        None
    }

    /// The terminal error once every candidate (and any hedge) is spent.
    fn exhausted_error(&mut self) -> Error {
        self.last_err.take().unwrap_or_else(|| {
            if self.short_circuited > 0 {
                Error::llm(format!(
                    "all {} backend(s) are circuit-broken; retry after the cooldown",
                    self.short_circuited
                ))
            } else {
                Error::llm("backend pool has no backends")
            }
        })
    }
}

impl CallMachine for PoolCall {
    fn poll(&mut self, now: Instant) -> Option<Result<CompletionResponse>> {
        if matches!(self.walk, WalkState::Done) {
            return None;
        }
        if let Some(win) = self.poll_hedge(now) {
            return Some(win);
        }
        loop {
            match self.walk {
                WalkState::Next => {
                    if self.pos >= self.cands.len() {
                        if self.hedge_flight.is_some() {
                            // Every candidate failed but the hedge is still
                            // racing; its outcome decides the call.
                            self.walk = WalkState::AwaitHedge;
                            return None;
                        }
                        let err = self.exhausted_error();
                        self.finish();
                        return Some(Err(err));
                    }
                    if Some(self.pos) == self.hedge_used {
                        // The fired hedge already consumed this candidate.
                        self.pos += 1;
                        continue;
                    }
                    let probe = if self.breaker_threshold > 0 {
                        match self.cands[self.pos].shared.breaker.admission(self.now_ms()) {
                            Admission::Skip => {
                                // ordering: Relaxed — statistics counter.
                                self.cands[self.pos]
                                    .shared
                                    .counters
                                    .short_circuits
                                    .fetch_add(1, Ordering::Relaxed);
                                self.short_circuited += 1;
                                self.pos += 1;
                                continue;
                            }
                            Admission::Probe => true,
                            Admission::Normal => false,
                        }
                    } else {
                        false
                    };
                    self.attempt = 0;
                    self.launch_attempt(probe);
                }
                WalkState::InFlight => {
                    let flight = self.flight.as_mut().expect("in-flight walk has a flight");
                    let outcome = flight.handle.poll(now)?;
                    let measured_ms =
                        now.saturating_duration_since(flight.started).as_secs_f64() * 1000.0;
                    let probe = flight.probe;
                    flight.close();
                    let shared = Arc::clone(&flight.shared);
                    self.flight = None;
                    match outcome {
                        Ok(response) => {
                            shared.record_success(
                                response.latency_ms,
                                measured_ms,
                                self.now_ms(),
                                self.decay_half_life_ms,
                            );
                            if self.breaker_threshold > 0 {
                                shared.breaker.on_success();
                            }
                            self.finish();
                            return Some(Ok(response));
                        }
                        Err(e) => {
                            let opened = shared.record_error(
                                self.now_ms(),
                                self.breaker_threshold,
                                self.breaker_cooldown_ms,
                                probe,
                            );
                            self.last_err = Some(e);
                            // A probe gets a single attempt; an open breaker
                            // makes remaining retries doomed — fail over.
                            if probe || opened || self.attempt >= self.retries {
                                self.pos += 1;
                                self.walk = WalkState::Next;
                            } else {
                                self.attempt += 1;
                                let backoff_ms = (self.backoff_base_ms
                                    * (1u64 << (self.attempt - 1).min(20)) as f64)
                                    .min(BACKOFF_CAP_MS);
                                self.walk = WalkState::Backoff {
                                    until: now + Duration::from_secs_f64(backoff_ms / 1000.0),
                                };
                            }
                        }
                    }
                }
                WalkState::Backoff { until } => {
                    if now < until {
                        return None;
                    }
                    self.launch_attempt(false);
                }
                WalkState::AwaitHedge => {
                    if self.hedge_flight.is_some() {
                        return None;
                    }
                    // poll_hedge drained the hedge with an error.
                    let err = self.exhausted_error();
                    self.finish();
                    return Some(Err(err));
                }
                WalkState::Done => return None,
            }
        }
    }

    fn next_wakeup(&self, now: Instant) -> Option<Instant> {
        let mut earliest: Option<Instant> = None;
        let mut fold = |candidate: Option<Instant>| match candidate {
            None => {}
            Some(t) => earliest = Some(earliest.map_or(t, |e| e.min(t))),
        };
        match &self.walk {
            WalkState::Next | WalkState::Done => return None,
            WalkState::InFlight => match self.flight.as_ref() {
                Some(flight) => match flight.handle.next_wakeup(now) {
                    None => return None,
                    wake => fold(wake),
                },
                None => return None,
            },
            WalkState::Backoff { until } => fold(Some(*until)),
            WalkState::AwaitHedge => {}
        }
        if let Some(flight) = &self.hedge_flight {
            match flight.handle.next_wakeup(now) {
                None => return None,
                wake => fold(wake),
            }
        } else if let Some(fire_at) = self.hedge_fire_at {
            fold(Some(fire_at));
        }
        earliest
    }
}

/// One candidate's bounded-retry attempt loop, shared by the plain candidate
/// walk and hedge worker threads: up to `1 + max_attempt` attempts with
/// exponential backoff, updating the slot's counters, its latency EWMA (on
/// success, with *measured* wall time), and its breaker state. Returns the
/// first success or the last error.
#[allow(clippy::too_many_arguments)]
fn run_attempts(
    backend: &dyn Backend,
    shared: &SlotShared,
    request: &CompletionRequest,
    max_attempt: usize,
    backoff_base_ms: f64,
    probe: bool,
    breaker_threshold: u64,
    breaker_cooldown_ms: f64,
    decay_half_life_ms: f64,
    epoch: Instant,
) -> Result<CompletionResponse> {
    let mut last_err = None;
    for attempt in 0..=max_attempt {
        if attempt > 0 {
            // ordering: Relaxed — statistics counter.
            shared.counters.retries.fetch_add(1, Ordering::Relaxed);
            let backoff =
                (backoff_base_ms * (1u64 << (attempt - 1).min(20)) as f64).min(BACKOFF_CAP_MS);
            if backoff > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(backoff / 1000.0));
            }
        }
        // ordering: Relaxed — calls is a statistic; in_flight is the
        // advisory routing gauge (released by InFlightDecrement on drop).
        shared.counters.calls.fetch_add(1, Ordering::Relaxed);
        shared.counters.in_flight.fetch_add(1, Ordering::Relaxed);
        let in_flight_guard = InFlightDecrement(&shared.counters.in_flight);
        let mut probe_guard = ProbeAbortGuard {
            breaker: &shared.breaker,
            armed: probe,
        };
        let started = Instant::now();
        let outcome = backend.complete(request, attempt);
        let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
        // Normal return: on_success/on_error below own the flag.
        probe_guard.armed = false;
        drop(probe_guard);
        drop(in_flight_guard);
        match outcome {
            Ok(response) => {
                shared.record_success(
                    response.latency_ms,
                    elapsed_ms,
                    epoch.elapsed().as_millis() as u64,
                    decay_half_life_ms,
                );
                if breaker_threshold > 0 {
                    shared.breaker.on_success();
                }
                return Ok(response);
            }
            Err(e) => {
                last_err = Some(e);
                if shared.record_error(
                    epoch.elapsed().as_millis() as u64,
                    breaker_threshold,
                    breaker_cooldown_ms,
                    probe,
                ) {
                    // Breaker just opened: remaining retries on this backend
                    // are doomed attempts — fail over now.
                    break;
                }
            }
        }
    }
    Err(last_err.expect("at least one attempt ran"))
}

impl LanguageModel for BackendPool {
    fn name(&self) -> String {
        let members: Vec<&str> = self.slots.iter().map(|s| s.backend.id()).collect();
        format!("pool[{}]({})", self.policy, members.join(","))
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse> {
        self.route(request)
    }

    fn submit(&self, request: &CompletionRequest) -> CallHandle {
        CallHandle::machine(Box::new(self.submit_call(request)))
    }

    fn supports_async_submit(&self) -> bool {
        // One blocking member would stall the event loop at submit time;
        // advertise async dispatch only when the whole pool is async.
        self.slots.iter().all(|slot| slot.backend.supports_async())
    }

    fn fingerprint(&self) -> String {
        // All members agree (enforced at construction); the pool is
        // semantically the model its members serve.
        self.slots[0].backend.fingerprint()
    }

    fn cost_model(&self) -> LlmCostModel {
        self.slots[0].backend.cost_model()
    }

    fn relation_cardinality(&self, table: &str) -> Option<u64> {
        // Members are semantically identical (enforced at construction), so
        // any member's hint is the pool's hint.
        self.slots[0].backend.relation_cardinality(table)
    }
}

/// A trivial [`Backend`] adapter exposing any [`LanguageModel`] as a single
/// always-healthy endpoint (no injected latency or errors) — the degenerate
/// one-backend pool, and a convenient building block for tests.
pub struct DirectBackend {
    id: String,
    inner: Arc<dyn LanguageModel>,
}

impl DirectBackend {
    /// Expose `inner` as the endpoint named `id`.
    pub fn new(id: impl Into<String>, inner: Arc<dyn LanguageModel>) -> Self {
        DirectBackend {
            id: id.into(),
            inner,
        }
    }
}

impl Backend for DirectBackend {
    fn id(&self) -> &str {
        &self.id
    }

    fn complete(&self, request: &CompletionRequest, _attempt: usize) -> Result<CompletionResponse> {
        self.inner.complete(request)
    }

    fn submit(&self, request: &CompletionRequest, _attempt: usize) -> CallHandle {
        self.inner.submit(request)
    }

    fn supports_async(&self) -> bool {
        self.inner.supports_async_submit()
    }

    fn fingerprint(&self) -> String {
        self.inner.fingerprint()
    }

    fn cost_model(&self) -> LlmCostModel {
        self.inner.cost_model()
    }

    fn relation_cardinality(&self, table: &str) -> Option<u64> {
        self.inner.relation_cardinality(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::count_tokens;
    use parking_lot::Mutex;

    /// A deterministic fake model: completion text is a pure function of the
    /// prompt; counts invocations.
    struct EchoModel {
        tag: String,
        calls: Mutex<u64>,
    }

    impl EchoModel {
        fn new(tag: &str) -> Self {
            EchoModel {
                tag: tag.to_string(),
                calls: Mutex::new(0),
            }
        }
    }

    impl LanguageModel for EchoModel {
        fn name(&self) -> String {
            format!("echo({})", self.tag)
        }
        fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse> {
            *self.calls.lock() += 1;
            Ok(CompletionResponse {
                text: format!("{}:{}", self.tag, request.prompt),
                prompt_tokens: count_tokens(&request.prompt),
                completion_tokens: 3,
                latency_ms: 1.0,
                cost_usd: 0.001,
            })
        }
    }

    fn spec(name: &str) -> BackendSpec {
        BackendSpec::new(name)
    }

    fn pool_over(specs: &[BackendSpec], policy: RoutingPolicy) -> (Arc<EchoModel>, BackendPool) {
        let model = Arc::new(EchoModel::new("m"));
        let pool = BackendPool::from_specs(
            Arc::clone(&model) as Arc<dyn LanguageModel>,
            specs,
            policy,
            7,
        )
        .unwrap()
        .with_backoff_base_ms(0.0);
        (model, pool)
    }

    #[test]
    fn round_robin_rotates_across_backends() {
        let (_, pool) = pool_over(
            &[spec("a"), spec("b"), spec("c")],
            RoutingPolicy::RoundRobin,
        );
        for i in 0..6 {
            pool.complete(&CompletionRequest::new(format!("p{i}")))
                .unwrap();
        }
        let stats = pool.stats();
        assert_eq!(
            stats.iter().map(|s| s.calls).collect::<Vec<_>>(),
            vec![2, 2, 2],
            "round robin should spread calls evenly: {stats:?}"
        );
        assert!(stats.iter().all(|s| s.errors == 0 && s.in_flight == 0));
    }

    #[test]
    fn cost_aware_prefers_cheapest_backend() {
        let cheap = LlmCostModel {
            usd_per_1k_prompt_tokens: 0.0001,
            usd_per_1k_completion_tokens: 0.0002,
            ..LlmCostModel::default()
        };
        let (_, pool) = pool_over(
            &[
                spec("pricey"),
                spec("bargain").with_cost_model(cheap),
                spec("mid"),
            ],
            RoutingPolicy::CostAware,
        );
        for i in 0..5 {
            pool.complete(&CompletionRequest::new(format!("p{i}")))
                .unwrap();
        }
        let stats = pool.stats();
        let bargain = stats.iter().find(|s| s.id == "bargain").unwrap();
        assert_eq!(bargain.calls, 5, "all traffic should hit the cheap backend");
    }

    #[test]
    fn failover_skips_hard_down_backend() {
        let (model, pool) = pool_over(
            &[spec("down").failing(), spec("up")],
            RoutingPolicy::RoundRobin,
        );
        let resp = pool.complete(&CompletionRequest::new("hello")).unwrap();
        assert_eq!(resp.text, "m:hello");
        let stats = pool.stats();
        let down = stats.iter().find(|s| s.id == "down").unwrap();
        let up = stats.iter().find(|s| s.id == "up").unwrap();
        // The failing backend got 1 + retries attempts, all errors; the
        // healthy one served the request.
        assert_eq!(down.calls, 2);
        assert_eq!(down.errors, 2);
        assert_eq!(down.retries, 1);
        assert_eq!(up.calls, 1);
        assert_eq!(up.errors, 0);
        // The inner model saw exactly one completion: failed attempts never
        // reach it.
        assert_eq!(*model.calls.lock(), 1);
    }

    #[test]
    fn all_backends_down_returns_last_error() {
        let (model, pool) = pool_over(
            &[spec("d1").failing(), spec("d2").failing()],
            RoutingPolicy::RoundRobin,
        );
        let err = pool.complete(&CompletionRequest::new("x")).unwrap_err();
        assert!(err.to_string().contains("simulated endpoint error"));
        assert_eq!(*model.calls.lock(), 0);
    }

    #[test]
    fn transient_errors_are_deterministic() {
        let flaky = [spec("flaky").with_error_rate(0.5), spec("backup")];
        let trace = |prompts: &[&str]| -> Vec<BackendStats> {
            let (_, pool) = pool_over(&flaky, RoutingPolicy::RoundRobin);
            for p in prompts {
                pool.complete(&CompletionRequest::new(*p)).unwrap();
            }
            pool.stats()
        };
        let prompts = ["a", "b", "c", "d", "e", "f", "g", "h"];
        let first = trace(&prompts);
        let second = trace(&prompts);
        assert_eq!(first, second, "retry/failover trace must be reproducible");
        assert!(
            first.iter().any(|s| s.errors > 0),
            "a 50% error rate over 8 prompts should produce at least one error: {first:?}"
        );
    }

    #[test]
    fn mismatched_fingerprints_are_rejected() {
        let a: Arc<dyn Backend> =
            Arc::new(DirectBackend::new("a", Arc::new(EchoModel::new("one"))));
        let b: Arc<dyn Backend> =
            Arc::new(DirectBackend::new("b", Arc::new(EchoModel::new("two"))));
        assert!(BackendPool::new(vec![a, b], RoutingPolicy::RoundRobin).is_err());
    }

    #[test]
    fn duplicate_ids_and_empty_pools_are_rejected() {
        let model = Arc::new(EchoModel::new("m"));
        let mk = || -> Arc<dyn Backend> {
            Arc::new(DirectBackend::new(
                "same",
                Arc::clone(&model) as Arc<dyn LanguageModel>,
            ))
        };
        assert!(BackendPool::new(vec![mk(), mk()], RoutingPolicy::RoundRobin).is_err());
        assert!(BackendPool::new(vec![], RoutingPolicy::RoundRobin).is_err());
    }

    #[test]
    fn per_backend_pricing_is_applied() {
        let pricey = LlmCostModel {
            usd_per_1k_prompt_tokens: 1.0,
            usd_per_1k_completion_tokens: 1.0,
            ..LlmCostModel::default()
        };
        let (_, pool) = pool_over(
            &[spec("pricey").with_cost_model(pricey)],
            RoutingPolicy::RoundRobin,
        );
        let resp = pool
            .complete(&CompletionRequest::new("prompt text here"))
            .unwrap();
        let want = pricey.request_cost_usd(resp.prompt_tokens, resp.completion_tokens);
        assert!((resp.cost_usd - want).abs() < 1e-12);
    }

    #[test]
    fn pool_name_and_fingerprint() {
        let (model, pool) = pool_over(&[spec("a"), spec("b")], RoutingPolicy::LeastInFlight);
        assert_eq!(pool.name(), "pool[least-in-flight](a,b)");
        assert_eq!(pool.fingerprint(), model.fingerprint());
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
        assert_eq!(pool.policy(), RoutingPolicy::LeastInFlight);
    }

    #[test]
    fn prompt_hash_routing_is_a_pure_function_of_the_prompt() {
        // The same prompt set must produce the same per-backend counters no
        // matter how calls interleave — sequential vs 8 threads racing.
        let specs = [spec("a"), spec("b"), spec("c")];
        let prompts: Vec<String> = (0..24).map(|i| format!("prompt {i}")).collect();

        let (_, sequential) = pool_over(&specs, RoutingPolicy::PromptHash);
        for p in &prompts {
            sequential
                .complete(&CompletionRequest::new(p.clone()))
                .unwrap();
        }

        let (_, concurrent) = pool_over(&specs, RoutingPolicy::PromptHash);
        let concurrent = Arc::new(concurrent);
        std::thread::scope(|scope| {
            for chunk in prompts.chunks(3) {
                let pool = Arc::clone(&concurrent);
                scope.spawn(move || {
                    for p in chunk {
                        pool.complete(&CompletionRequest::new(p.clone())).unwrap();
                    }
                });
            }
        });

        let seq: Vec<u64> = sequential.stats().iter().map(|s| s.calls).collect();
        let conc: Vec<u64> = concurrent.stats().iter().map(|s| s.calls).collect();
        assert_eq!(seq, conc, "physical trace depends on interleaving");
        assert!(
            seq.iter().filter(|&&c| c > 0).count() >= 2,
            "24 hashed prompts should spread over >= 2 of 3 backends: {seq:?}"
        );
    }

    #[test]
    fn breaker_opens_and_bounds_attempts_on_a_hard_down_backend() {
        let (_, pool) = pool_over(
            &[spec("down").failing(), spec("up")],
            RoutingPolicy::RoundRobin,
        );
        // Threshold 3, cooldown far beyond the test duration.
        let pool = pool.with_breaker(3, 60_000.0);
        for i in 0..50 {
            pool.complete(&CompletionRequest::new(format!("p{i}")))
                .unwrap();
        }
        let stats = pool.stats();
        let down = stats.iter().find(|s| s.id == "down").unwrap();
        // Without the breaker the down backend would absorb 2 attempts per
        // request routed to it (~50 total); with it, attempts stop at the
        // threshold and later requests short-circuit.
        assert_eq!(down.calls, 3, "attempts not bounded by threshold: {down:?}");
        assert!(down.breaker_open);
        assert!(
            down.short_circuits > 0,
            "open breaker never short-circuited: {down:?}"
        );
        let up = stats.iter().find(|s| s.id == "up").unwrap();
        assert_eq!(up.calls, 50);
    }

    #[test]
    fn breaker_half_open_probe_reopens_on_failure_and_closes_on_recovery() {
        /// A backend whose health is flipped by the test.
        struct FlakyBackend {
            inner: Arc<dyn LanguageModel>,
            healthy: std::sync::atomic::AtomicBool,
        }
        impl Backend for FlakyBackend {
            fn id(&self) -> &str {
                "flappy"
            }
            fn complete(
                &self,
                request: &CompletionRequest,
                _attempt: usize,
            ) -> Result<CompletionResponse> {
                // ordering: Relaxed — test health flag; eventual visibility
                // is all the scenario needs.
                if self.healthy.load(Ordering::Relaxed) {
                    self.inner.complete(request)
                } else {
                    Err(Error::llm("flappy is down"))
                }
            }
            fn fingerprint(&self) -> String {
                self.inner.fingerprint()
            }
        }

        let model = Arc::new(EchoModel::new("m"));
        let flaky = Arc::new(FlakyBackend {
            inner: Arc::clone(&model) as Arc<dyn LanguageModel>,
            healthy: std::sync::atomic::AtomicBool::new(false),
        });
        let backup: Arc<dyn Backend> = Arc::new(DirectBackend::new(
            "backup",
            Arc::clone(&model) as Arc<dyn LanguageModel>,
        ));
        // Cost-aware with equal prices degenerates to registration order, so
        // every request tries the flaky backend first — which keeps the
        // request-to-breaker-transition mapping exact.
        let pool = BackendPool::new(
            vec![Arc::clone(&flaky) as Arc<dyn Backend>, backup],
            RoutingPolicy::CostAware,
        )
        .unwrap()
        .with_retries(0)
        .with_backoff_base_ms(0.0)
        .with_breaker(2, 20.0);

        // Two failures open the breaker.
        pool.complete(&CompletionRequest::new("a")).unwrap();
        pool.complete(&CompletionRequest::new("b")).unwrap();
        assert!(pool.stats()[0].breaker_open);
        let attempts_when_opened = pool.stats()[0].calls;
        assert_eq!(attempts_when_opened, 2);

        // Inside the cooldown: short-circuited, no new attempts.
        pool.complete(&CompletionRequest::new("c")).unwrap();
        assert_eq!(pool.stats()[0].calls, attempts_when_opened);

        // After the cooldown, one probe goes through; the backend is still
        // down, so the probe fails and the breaker reopens.
        std::thread::sleep(std::time::Duration::from_millis(25));
        pool.complete(&CompletionRequest::new("d")).unwrap();
        let after_probe = pool.stats()[0].clone();
        assert_eq!(after_probe.calls, attempts_when_opened + 1);
        assert!(after_probe.breaker_open, "failed probe must reopen");

        // Backend recovers; the next probe succeeds and closes the breaker.
        // ordering: Relaxed — test health flag, see FlakyBackend::complete.
        flaky.healthy.store(true, Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_millis(25));
        pool.complete(&CompletionRequest::new("e")).unwrap();
        let recovered = pool.stats()[0].clone();
        assert!(!recovered.breaker_open, "successful probe must close");
        // Closed again: requests flow to it normally (round robin).
        pool.complete(&CompletionRequest::new("f")).unwrap();
        pool.complete(&CompletionRequest::new("g")).unwrap();
        assert!(pool.stats()[0].calls > recovered.calls);
    }

    #[test]
    fn panicking_probe_does_not_wedge_the_half_open_state() {
        #[derive(PartialEq)]
        enum Mode {
            Err,
            Panic,
            Healthy,
        }
        struct MoodyBackend {
            inner: Arc<dyn LanguageModel>,
            mode: parking_lot::Mutex<Mode>,
        }
        impl Backend for MoodyBackend {
            fn id(&self) -> &str {
                "moody"
            }
            fn complete(
                &self,
                request: &CompletionRequest,
                _attempt: usize,
            ) -> Result<CompletionResponse> {
                match *self.mode.lock() {
                    Mode::Err => Err(Error::llm("moody is down")),
                    Mode::Panic => panic!("moody panicked mid-probe"),
                    Mode::Healthy => self.inner.complete(request),
                }
            }
            fn fingerprint(&self) -> String {
                self.inner.fingerprint()
            }
        }

        let model = Arc::new(EchoModel::new("m"));
        let moody = Arc::new(MoodyBackend {
            inner: Arc::clone(&model) as Arc<dyn LanguageModel>,
            mode: parking_lot::Mutex::new(Mode::Err),
        });
        let backup: Arc<dyn Backend> = Arc::new(DirectBackend::new(
            "backup",
            Arc::clone(&model) as Arc<dyn LanguageModel>,
        ));
        let pool = BackendPool::new(
            vec![Arc::clone(&moody) as Arc<dyn Backend>, backup],
            RoutingPolicy::CostAware,
        )
        .unwrap()
        .with_retries(0)
        .with_backoff_base_ms(0.0)
        .with_breaker(1, 10.0);

        // One error opens the breaker.
        pool.complete(&CompletionRequest::new("a")).unwrap();
        assert!(pool.stats()[0].breaker_open);

        // The half-open probe panics. Without the unwind guard this would
        // leave the probe claim held forever, permanently short-circuiting
        // the backend.
        *moody.mode.lock() = Mode::Panic;
        std::thread::sleep(std::time::Duration::from_millis(15));
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.complete(&CompletionRequest::new("b"))
        }));
        assert!(panicked.is_err(), "probe should have panicked");

        // Backend recovers: the next cooldown expiry must still admit a
        // probe, which succeeds and closes the breaker.
        *moody.mode.lock() = Mode::Healthy;
        std::thread::sleep(std::time::Duration::from_millis(15));
        let resp = pool.complete(&CompletionRequest::new("c")).unwrap();
        assert_eq!(resp.text, "m:c");
        assert!(
            !pool.stats()[0].breaker_open,
            "recovered backend stayed short-circuited: {:?}",
            pool.stats()[0]
        );
    }

    #[test]
    fn racing_admissions_claim_exactly_one_probe_per_window() {
        // The half-open race regression: N threads observe the expired
        // cooldown concurrently; the old two-word state (expiry + separate
        // `probing` bool) let a racer that passed the stale expiry check win
        // the flag CAS *after* a failed probe re-opened the breaker —
        // launching a second probe inside the fresh cooldown window. The
        // single-word encoding admits exactly one probe per window, however
        // many racers and however the probe resolves.
        use std::sync::Barrier;
        for round in 0..50 {
            let breaker = BreakerState::default();
            breaker.open(0, 10.0); // cooldown expires at t=10ms
            let threads = 8;
            let barrier = Barrier::new(threads);
            let probes = AtomicU64::new(0);
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let breaker = &breaker;
                    let barrier = &barrier;
                    let probes = &probes;
                    scope.spawn(move || {
                        barrier.wait();
                        if breaker.admission(20) == Admission::Probe {
                            // ordering: SeqCst — the race test counts exact
                            // probe admissions across threads; total order
                            // keeps the count unambiguous.
                            probes.fetch_add(1, Ordering::SeqCst);
                            // Half the rounds: the probe fails and re-opens
                            // the breaker — the window where the old race
                            // admitted a second probe. Other half: the probe
                            // stays in flight (sentinel held) while the
                            // remaining racers run their admission checks.
                            if (round + t) % 2 == 0 {
                                breaker.on_error(20, 1, 1_000.0, true);
                            }
                        }
                    });
                }
            });
            assert_eq!(
                // ordering: SeqCst — paired with the increments above.
                probes.load(Ordering::SeqCst),
                1,
                "round {round}: expired breaker must admit exactly one probe"
            );
        }
    }

    #[test]
    fn racing_pool_calls_send_exactly_one_probe_per_cooldown() {
        // Pool-level version of the race: a hard-down backend with an open
        // breaker, N async PoolCalls created after the cooldown expired and
        // polled concurrently. Exactly one physical probe attempt may reach
        // the backend per cooldown window; everyone else short-circuits to
        // the healthy sibling.
        let (_, pool) = pool_over(
            &[spec("down").failing(), spec("up")],
            RoutingPolicy::CostAware, // static order: down first
        );
        let pool = Arc::new(pool.with_retries(0).with_breaker(1, 10.0));
        // Trip the breaker (one failed attempt, failover serves the call).
        pool.complete(&CompletionRequest::new("trip")).unwrap();
        let calls_when_opened = pool.stats()[0].calls;
        assert!(pool.stats()[0].breaker_open);

        // Let the cooldown expire, then race 8 calls through the machine.
        std::thread::sleep(Duration::from_millis(15));
        std::thread::scope(|scope| {
            for i in 0..8 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    let resp =
                        drive_call(pool.submit_call(&CompletionRequest::new(format!("r{i}"))))
                            .unwrap();
                    assert_eq!(resp.text, format!("m:r{i}"));
                });
            }
        });
        let down = &pool.stats()[0];
        // The probe fails and re-opens the breaker for 10ms — longer than
        // the racing burst — so the window admits exactly one attempt.
        assert_eq!(
            down.calls,
            calls_when_opened + 1,
            "more than one probe escaped the half-open window: {down:?}"
        );
        assert!(
            down.short_circuits >= 7,
            "racers that lost the probe claim must short-circuit: {down:?}"
        );
        assert!(down.breaker_open, "failed probe must re-open");
    }

    #[test]
    fn abandoned_probe_releases_the_claim_for_the_next_caller() {
        let breaker = BreakerState::default();
        breaker.open(0, 10.0);
        assert_eq!(breaker.admission(20), Admission::Probe);
        // While the probe is in flight every other caller skips.
        assert_eq!(breaker.admission(25), Admission::Skip);
        // The probe is abandoned (dropped handle): the claim is released and
        // the cooldown re-expires immediately.
        breaker.abort_probe();
        assert_eq!(breaker.admission(26), Admission::Probe);
        // A probe that already resolved is not disturbed by a late abort.
        breaker.on_success();
        breaker.abort_probe();
        assert_eq!(breaker.admission(27), Admission::Normal);
    }

    #[test]
    fn absurd_cooldowns_saturate_instead_of_overflowing() {
        // A finite-but-enormous cooldown passes config validation; the
        // breaker must pin the expiry at u64::MAX, not overflow (debug
        // panic / release wraparound that would silently re-close it).
        let (_, pool) = pool_over(&[spec("d").failing(), spec("up")], RoutingPolicy::CostAware);
        let pool = pool.with_breaker(1, 3.0e19);
        pool.complete(&CompletionRequest::new("x")).unwrap();
        pool.complete(&CompletionRequest::new("y")).unwrap();
        let down = &pool.stats()[0];
        assert_eq!(down.calls, 1, "breaker failed to hold open: {down:?}");
        assert!(down.breaker_open);
        assert!(down.short_circuits >= 1);
    }

    #[test]
    fn chaos_outage_fails_over_and_reproduces_identical_stats() {
        use llmsql_types::{ChaosFault, ChaosPlan};
        // One backend hard-down for half the virtual horizon, plus an error
        // burst on the other: failover still answers every prompt with the
        // correct text, and the physical trace is a pure function of the
        // seed (same plan + same prompts ⇒ identical BackendStats).
        let plan = ChaosPlan::new(11, 1_000)
            .with_window("a", ChaosFault::Outage, 0, 500)
            .with_window("b", ChaosFault::ErrorBurst { error_rate: 0.3 }, 250, 750);
        let trace = || -> Vec<BackendStats> {
            let model = Arc::new(EchoModel::new("m"));
            let pool = BackendPool::from_specs_with_chaos(
                model as Arc<dyn LanguageModel>,
                &[spec("a"), spec("b"), spec("c")],
                RoutingPolicy::PromptHash,
                7,
                Some(plan.clone()),
            )
            .unwrap()
            .with_backoff_base_ms(0.0);
            for i in 0..24 {
                let prompt = format!("prompt {i}");
                let resp = pool
                    .complete(&CompletionRequest::new(prompt.clone()))
                    .unwrap();
                assert_eq!(resp.text, format!("m:{prompt}"));
            }
            pool.stats()
        };
        let first = trace();
        let second = trace();
        assert_eq!(first, second, "chaos trace must reproduce run-to-run");
        let a = first.iter().find(|s| s.id == "a").unwrap();
        assert!(
            a.errors > 0,
            "an outage over half the horizon should fail some attempts on 'a': {first:?}"
        );
    }

    #[test]
    fn chaos_latency_storm_scales_wall_clock_but_not_reported_latency() {
        use llmsql_types::{ChaosFault, ChaosPlan};
        // The whole horizon is one latency storm: the round trip visibly
        // stretches, but the *reported* latency (what metrics accumulate)
        // stays the spec's 5ms — accounting is chaos-independent.
        let plan = ChaosPlan::new(3, 1_000).with_window(
            "only",
            ChaosFault::LatencyStorm { factor: 8.0 },
            0,
            1_000,
        );
        let run = |plan: Option<ChaosPlan>| {
            let model = Arc::new(EchoModel::new("m"));
            let pool = BackendPool::from_specs_with_chaos(
                model as Arc<dyn LanguageModel>,
                &[spec("only").with_latency_ms(5.0)],
                RoutingPolicy::RoundRobin,
                7,
                plan,
            )
            .unwrap();
            let started = Instant::now();
            let resp = pool.complete(&CompletionRequest::new("p")).unwrap();
            (resp, started.elapsed())
        };
        let (calm_resp, _) = run(None);
        let (storm_resp, storm_elapsed) = run(Some(plan));
        assert!(
            storm_elapsed >= Duration::from_millis(35),
            "8× storm on a 5ms backend should take ≥ 35ms, took {storm_elapsed:?}"
        );
        // Reported latency accounting is chaos-independent: storm and calm
        // runs report byte-identical responses.
        assert_eq!(storm_resp.latency_ms, calm_resp.latency_ms);
        assert_eq!(storm_resp.text, calm_resp.text);
    }

    #[test]
    fn all_breakers_open_is_a_clean_error() {
        let (_, pool) = pool_over(&[spec("d").failing()], RoutingPolicy::RoundRobin);
        let pool = pool.with_breaker(1, 60_000.0);
        // First request trips the breaker (and fails through the normal
        // path); subsequent requests fail fast with a breaker error.
        pool.complete(&CompletionRequest::new("x")).unwrap_err();
        let err = pool.complete(&CompletionRequest::new("y")).unwrap_err();
        assert!(
            err.to_string().contains("circuit-broken"),
            "unexpected error: {err}"
        );
        assert_eq!(pool.stats()[0].calls, 1, "fail-fast must cost no attempts");
    }

    #[test]
    fn latency_accounting_rounds_and_matches_reported_sums() {
        // Regression: `(latency_ms * 1000.0) as u64` truncated sub-µs
        // remainders, so a model reporting 0.6µs per call accumulated zero.
        // Rounding keeps the error within 0.5µs per call.
        struct TinyLatencyModel;
        impl LanguageModel for TinyLatencyModel {
            fn name(&self) -> String {
                "tiny".into()
            }
            fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse> {
                Ok(CompletionResponse {
                    text: format!("r:{}", request.prompt),
                    prompt_tokens: 1,
                    completion_tokens: 1,
                    latency_ms: 0.0006, // 0.6µs
                    cost_usd: 0.0,
                })
            }
        }
        let backend: Arc<dyn Backend> =
            Arc::new(DirectBackend::new("tiny", Arc::new(TinyLatencyModel)));
        let pool = BackendPool::new(vec![backend], RoutingPolicy::RoundRobin).unwrap();
        const CALLS: usize = 1000;
        let mut reported_sum = 0.0;
        for i in 0..CALLS {
            let resp = pool
                .complete(&CompletionRequest::new(format!("p{i}")))
                .unwrap();
            reported_sum += resp.latency_ms;
        }
        let accounted = pool.stats()[0].latency_ms;
        let tolerance_ms = CALLS as f64 * 0.0005; // 0.5µs per call
        assert!(
            (accounted - reported_sum).abs() <= tolerance_ms,
            "accounted {accounted}ms vs reported {reported_sum}ms drifts more than \
             0.5µs/call (truncation regression)"
        );
    }

    #[test]
    fn nan_and_negative_latencies_clamp_to_zero() {
        // A buggy/simulated endpoint reporting NaN or negative latency must
        // not poison (or wrap) the accumulator.
        struct NastyLatencyModel {
            latencies: Mutex<Vec<f64>>,
        }
        impl LanguageModel for NastyLatencyModel {
            fn name(&self) -> String {
                "nasty".into()
            }
            fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse> {
                let latency_ms = self.latencies.lock().pop().unwrap_or(0.0);
                Ok(CompletionResponse {
                    text: format!("r:{}", request.prompt),
                    prompt_tokens: 1,
                    completion_tokens: 1,
                    latency_ms,
                    cost_usd: 0.0,
                })
            }
        }
        let backend: Arc<dyn Backend> = Arc::new(DirectBackend::new(
            "nasty",
            Arc::new(NastyLatencyModel {
                latencies: Mutex::new(vec![2.5, -5.0, f64::NAN]),
            }),
        ));
        let pool = BackendPool::new(vec![backend], RoutingPolicy::RoundRobin).unwrap();
        for i in 0..3 {
            pool.complete(&CompletionRequest::new(format!("p{i}")))
                .unwrap();
        }
        // NaN and -5.0 contribute nothing; only the 2.5ms call counts.
        assert!((pool.stats()[0].latency_ms - 2.5).abs() < 1e-9);
    }

    #[test]
    fn latency_aware_explores_cold_members_then_prefers_the_fastest() {
        let (_, pool) = pool_over(
            &[
                spec("slow").with_latency_ms(15.0),
                spec("fast").with_latency_ms(1.0),
            ],
            RoutingPolicy::LatencyAware,
        );
        // Cold pool: sample-less backends sort first, so the first two
        // requests explore both members.
        pool.complete(&CompletionRequest::new("a")).unwrap();
        pool.complete(&CompletionRequest::new("b")).unwrap();
        let warmup: Vec<u64> = pool.stats().iter().map(|s| s.calls).collect();
        assert_eq!(warmup, vec![1, 1], "cold pool must explore every member");
        // Steady state: everything routes to the measured-fastest backend.
        for i in 0..5 {
            pool.complete(&CompletionRequest::new(format!("p{i}")))
                .unwrap();
        }
        let stats = pool.stats();
        assert_eq!(
            stats[0].calls, 1,
            "slow backend should see no steady-state traffic: {stats:?}"
        );
        assert_eq!(stats[1].calls, 6);
        let ewma = pool.latency_ewma_ms();
        let (slow_ewma, fast_ewma) = (ewma[0].1.unwrap(), ewma[1].1.unwrap());
        assert!(
            slow_ewma > fast_ewma,
            "EWMA ordering inverted: slow={slow_ewma}ms fast={fast_ewma}ms"
        );
    }

    #[test]
    fn hedge_fires_on_a_late_primary_and_the_fast_sibling_wins() {
        let (_, pool) = pool_over(
            &[
                spec("slow").with_latency_ms(40.0),
                spec("fast").with_latency_ms(1.0),
            ],
            RoutingPolicy::RoundRobin,
        );
        let pool = pool.with_hedging(3.0, 1.0);
        // Warm-up: round robin alternates, giving both backends an EWMA
        // sample. No hedge can fire before any sample exists (lateness is
        // undefined), so these take the plain walk.
        pool.complete(&CompletionRequest::new("w0")).unwrap(); // -> slow
        pool.complete(&CompletionRequest::new("w1")).unwrap(); // -> fast
        assert_eq!(pool.stats().iter().map(|s| s.hedges).sum::<u64>(), 0);
        // This request starts on the slow backend, goes late at ~3× the
        // fast EWMA, and is hedged to the fast sibling — which wins by a
        // wide margin. The completion text is identical either way
        // (fingerprint equality), so rows can never change.
        let resp = pool.complete(&CompletionRequest::new("p")).unwrap();
        assert_eq!(resp.text, "m:p");
        let stats = pool.stats();
        let fast = stats.iter().find(|s| s.id == "fast").unwrap();
        assert!(fast.hedges >= 1, "no hedge issued: {stats:?}");
        assert!(fast.hedges_won >= 1, "hedge should have won: {stats:?}");
    }

    #[test]
    fn hedge_gate_veto_and_permit_semantics() {
        use std::sync::atomic::AtomicUsize;
        let (_, pool) = pool_over(
            &[
                spec("slow").with_latency_ms(30.0),
                spec("fast").with_latency_ms(1.0),
            ],
            RoutingPolicy::RoundRobin,
        );
        let pool = pool.with_hedging(3.0, 1.0);
        pool.complete(&CompletionRequest::new("w0")).unwrap();
        pool.complete(&CompletionRequest::new("w1")).unwrap();

        // A vetoing gate: the late primary is simply waited out; no hedge.
        pool.set_hedge_permit_gate(Some(Arc::new(|| None)));
        let resp = pool.complete(&CompletionRequest::new("vetoed")).unwrap();
        assert_eq!(resp.text, "m:vetoed");
        assert_eq!(
            pool.stats().iter().map(|s| s.hedges).sum::<u64>(),
            0,
            "gate veto must suppress the hedge"
        );

        // Round-robin parity: this filler lands on the fast backend (no
        // hedge), so the next request starts on the slow one again.
        pool.complete(&CompletionRequest::new("filler")).unwrap();

        // A granting gate is consulted exactly once per hedge, and its
        // permit is returned (held by the hedge worker while in flight).
        let grants = Arc::new(AtomicUsize::new(0));
        let gate_grants = Arc::clone(&grants);
        pool.set_hedge_permit_gate(Some(Arc::new(move || {
            // ordering: SeqCst — exact grant count asserted across the
            // hedge worker threads.
            gate_grants.fetch_add(1, Ordering::SeqCst);
            Some(Box::new(()) as Box<dyn std::any::Any + Send>)
        })));
        pool.complete(&CompletionRequest::new("hedged")).unwrap();
        // ordering: SeqCst — paired with the gate increment above.
        assert_eq!(grants.load(Ordering::SeqCst), 1);
        assert_eq!(pool.stats().iter().map(|s| s.hedges).sum::<u64>(), 1);
    }

    #[test]
    fn hedged_dispatch_still_fails_over_on_errors() {
        // Primary errors fast (before the hedge threshold): the request
        // fails over across the remaining candidates like the plain walk.
        let (_, pool) = pool_over(
            &[spec("down").failing(), spec("up").with_latency_ms(1.0)],
            RoutingPolicy::CostAware, // static order: down first
        );
        let pool = pool.with_hedging(3.0, 50.0);
        // Warm the healthy backend so hedge planning has a sample (the
        // first request fails over to it via the plain-walk fallback).
        let resp = pool.complete(&CompletionRequest::new("warm")).unwrap();
        assert_eq!(resp.text, "m:warm");
        // Now hedged dispatch is viable; the primary still errors
        // immediately and failover must still reach the healthy sibling.
        let resp = pool.complete(&CompletionRequest::new("x")).unwrap();
        assert_eq!(resp.text, "m:x");
        let down = &pool.stats()[0];
        assert!(down.errors > 0);
    }

    /// A backend whose round trip is adjustable at runtime and which serves
    /// the async submit path natively (the stall is a timer, not a sleep).
    struct AdjustableBackend {
        id: String,
        inner: Arc<dyn LanguageModel>,
        delay_ms: AtomicU64,
    }

    impl AdjustableBackend {
        fn new(id: &str, inner: Arc<dyn LanguageModel>, delay_ms: u64) -> Arc<Self> {
            Arc::new(AdjustableBackend {
                id: id.to_string(),
                inner,
                delay_ms: AtomicU64::new(delay_ms),
            })
        }
    }

    impl Backend for AdjustableBackend {
        fn id(&self) -> &str {
            &self.id
        }
        fn complete(
            &self,
            request: &CompletionRequest,
            _attempt: usize,
        ) -> Result<CompletionResponse> {
            // ordering: Relaxed — test knob; any recent value is fine.
            let delay = self.delay_ms.load(Ordering::Relaxed);
            if delay > 0 {
                std::thread::sleep(Duration::from_millis(delay));
            }
            self.inner.complete(request)
        }
        fn submit(&self, request: &CompletionRequest, _attempt: usize) -> CallHandle {
            // ordering: Relaxed — test knob; any recent value is fine.
            let delay = self.delay_ms.load(Ordering::Relaxed);
            let result = self.inner.complete(request);
            if delay > 0 {
                CallHandle::timed(result, Instant::now() + Duration::from_millis(delay))
            } else {
                CallHandle::ready(result)
            }
        }
        fn supports_async(&self) -> bool {
            true
        }
        fn fingerprint(&self) -> String {
            self.inner.fingerprint()
        }
    }

    /// Drive a [`PoolCall`] to completion on the calling thread — a minimal
    /// stand-in for the exec reactor, for in-crate tests.
    fn drive_call(mut call: PoolCall) -> Result<CompletionResponse> {
        loop {
            let now = Instant::now();
            if let Some(result) = call.poll(now) {
                return result;
            }
            match call.next_wakeup(now) {
                Some(at) => {
                    let nap = at
                        .saturating_duration_since(now)
                        .clamp(Duration::from_micros(50), Duration::from_millis(5));
                    std::thread::sleep(nap);
                }
                None => std::thread::yield_now(),
            }
        }
    }

    #[test]
    fn async_pool_call_matches_the_blocking_failover_trace() {
        // The same prompts through `complete` and through `submit_call`
        // produce identical responses AND identical per-backend physical
        // counters — the async machine is the blocking walk, re-shaped.
        let prompts: Vec<String> = (0..8).map(|i| format!("p{i}")).collect();
        let specs = [
            spec("down").failing(),
            spec("flaky").with_error_rate(0.5),
            spec("up"),
        ];
        let (_, blocking) = pool_over(&specs, RoutingPolicy::CostAware);
        for p in &prompts {
            blocking
                .complete(&CompletionRequest::new(p.clone()))
                .unwrap();
        }
        let (_, pool) = pool_over(&specs, RoutingPolicy::CostAware);
        for p in &prompts {
            let resp = drive_call(pool.submit_call(&CompletionRequest::new(p.clone()))).unwrap();
            assert_eq!(resp.text, format!("m:{p}"));
        }
        assert_eq!(
            blocking.stats(),
            pool.stats(),
            "async dispatch diverged from the blocking trace"
        );
    }

    #[test]
    fn async_pool_call_returns_the_last_error_when_all_backends_are_down() {
        let (model, pool) = pool_over(
            &[spec("d1").failing(), spec("d2").failing()],
            RoutingPolicy::RoundRobin,
        );
        let err = drive_call(pool.submit_call(&CompletionRequest::new("x"))).unwrap_err();
        assert!(err.to_string().contains("simulated endpoint error"));
        assert_eq!(*model.calls.lock(), 0);
        assert!(pool.stats().iter().all(|s| s.in_flight == 0));
    }

    #[test]
    fn timer_armed_hedge_rescues_a_one_off_stall() {
        // The gap the blocking path leaves open: a usually-fast primary
        // (EWMA well under the hedge threshold) stalls once. The blocking
        // path skips hedging ("expected on time"); the timer-armed async
        // path arms a timer for every hedgeable request, so the stall is
        // rescued by the sibling.
        let model = Arc::new(EchoModel::new("m"));
        let a = AdjustableBackend::new("a", Arc::clone(&model) as Arc<dyn LanguageModel>, 2);
        let b = AdjustableBackend::new("b", Arc::clone(&model) as Arc<dyn LanguageModel>, 2);
        let pool = BackendPool::new(
            vec![
                Arc::clone(&a) as Arc<dyn Backend>,
                Arc::clone(&b) as Arc<dyn Backend>,
            ],
            RoutingPolicy::CostAware, // static order: a is always primary
        )
        .unwrap()
        .with_backoff_base_ms(0.0)
        .with_hedging(4.0, 1.0);
        // Warm both members (~2ms EWMAs; hedge threshold ≈ 8ms).
        drive_call(pool.submit_call(&CompletionRequest::new("w0"))).unwrap();
        drive_call(pool.submit_call(&CompletionRequest::new("w1"))).unwrap();
        // A fast primary that stays fast is never hedged: the armed timer is
        // cancelled by the primary's completion.
        drive_call(pool.submit_call(&CompletionRequest::new("fastpath"))).unwrap();
        assert_eq!(pool.stats().iter().map(|s| s.hedges).sum::<u64>(), 0);

        // One-off stall: 60ms on a backend whose EWMA says ~2ms.
        // ordering: Relaxed — test knob (single-threaded driver here).
        a.delay_ms.store(60, Ordering::Relaxed);
        let started = Instant::now();
        let resp = drive_call(pool.submit_call(&CompletionRequest::new("stall"))).unwrap();
        // ordering: Relaxed — test knob (single-threaded driver here).
        a.delay_ms.store(2, Ordering::Relaxed);
        assert_eq!(resp.text, "m:stall");
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_millis(45),
            "stall was not hedged away: took {elapsed:?}"
        );
        let stats = pool.stats();
        let b_stats = stats.iter().find(|s| s.id == "b").unwrap();
        assert_eq!(b_stats.hedges, 1, "{stats:?}");
        assert_eq!(b_stats.hedges_won, 1, "{stats:?}");
        assert!(
            stats.iter().all(|s| s.in_flight == 0),
            "gauge leak: {stats:?}"
        );
    }

    #[test]
    fn hedge_timer_vs_primary_completion_races_stay_consistent() {
        // Stress the race window: primary latency straddles the hedge
        // threshold, so across many calls some are won by the primary, some
        // by the hedge, and some timers are cancelled mid-flight. Whatever
        // interleaving happens: the response text is always correct, permits
        // never leak, counters stay consistent, gauges drain to zero.
        use std::sync::atomic::AtomicI64;
        let model = Arc::new(EchoModel::new("m"));
        let primary = AdjustableBackend::new("p", Arc::clone(&model) as Arc<dyn LanguageModel>, 2);
        let sibling = AdjustableBackend::new("s", Arc::clone(&model) as Arc<dyn LanguageModel>, 2);
        let pool = BackendPool::new(
            vec![
                Arc::clone(&primary) as Arc<dyn Backend>,
                Arc::clone(&sibling) as Arc<dyn Backend>,
            ],
            RoutingPolicy::CostAware,
        )
        .unwrap()
        .with_backoff_base_ms(0.0)
        // Threshold ≈ 1× the pool's floor EWMA: the cycling primary delay
        // genuinely straddles it, so both race outcomes occur.
        .with_hedging(1.0, 1.0);
        let outstanding_permits = Arc::new(AtomicI64::new(0));
        struct PermitToken(Arc<AtomicI64>);
        impl Drop for PermitToken {
            fn drop(&mut self) {
                // ordering: SeqCst — the leak check asserts an exact zero
                // across worker threads; keep drops in the total order.
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let gate_permits = Arc::clone(&outstanding_permits);
        pool.set_hedge_permit_gate(Some(Arc::new(move || {
            // ordering: SeqCst — paired with PermitToken::drop's decrement.
            gate_permits.fetch_add(1, Ordering::SeqCst);
            Some(Box::new(PermitToken(Arc::clone(&gate_permits))) as Box<dyn std::any::Any + Send>)
        })));
        drive_call(pool.submit_call(&CompletionRequest::new("warm-p"))).unwrap();
        drive_call(pool.submit_call(&CompletionRequest::new("warm-s"))).unwrap();

        // Deterministic schedule: the primary delay cycles 2..6ms around the
        // moving ~EWMA threshold.
        for i in 0..60u64 {
            // ordering: Relaxed — test knob (single-threaded driver here).
            primary.delay_ms.store(2 + (i % 5), Ordering::Relaxed);
            let prompt = format!("race-{i}");
            let resp =
                drive_call(pool.submit_call(&CompletionRequest::new(prompt.clone()))).unwrap();
            assert_eq!(resp.text, format!("m:{prompt}"));
        }
        let stats = pool.stats();
        let hedges: u64 = stats.iter().map(|s| s.hedges).sum();
        let hedges_won: u64 = stats.iter().map(|s| s.hedges_won).sum();
        assert!(hedges_won <= hedges, "{stats:?}");
        assert!(
            hedges >= 1,
            "a delay schedule straddling the threshold should hedge at least once: {stats:?}"
        );
        assert!(
            stats.iter().all(|s| s.in_flight == 0),
            "gauge leak: {stats:?}"
        );
        assert_eq!(
            // ordering: SeqCst — paired with the grant/drop pair above.
            outstanding_permits.load(Ordering::SeqCst),
            0,
            "hedge permits leaked"
        );
        assert!(stats.iter().all(|s| s.errors == 0));
    }

    #[test]
    fn dropping_a_pool_call_mid_flight_releases_gauges_and_probe_flags() {
        // Cancellation-by-drop: abandon calls at various stages and verify
        // nothing sticks — in-flight gauges, hedge permits, probe flags.
        let model = Arc::new(EchoModel::new("m"));
        let slow = AdjustableBackend::new("slow", Arc::clone(&model) as Arc<dyn LanguageModel>, 50);
        let fast = AdjustableBackend::new("fast", Arc::clone(&model) as Arc<dyn LanguageModel>, 50);
        let pool = BackendPool::new(
            vec![
                Arc::clone(&slow) as Arc<dyn Backend>,
                Arc::clone(&fast) as Arc<dyn Backend>,
            ],
            RoutingPolicy::CostAware,
        )
        .unwrap()
        .with_hedging(1.0, 1.0);
        // In flight, never polled to completion — then dropped.
        let mut call = pool.submit_call(&CompletionRequest::new("abandoned"));
        assert!(call.poll(Instant::now()).is_none());
        assert_eq!(pool.stats()[0].in_flight, 1);
        drop(call);
        let stats = pool.stats();
        assert!(
            stats.iter().all(|s| s.in_flight == 0),
            "abandoned call leaked its in-flight gauge: {stats:?}"
        );
    }

    #[test]
    fn latency_decay_lets_a_recovered_backend_reattract_traffic() {
        // The LatencyAware cold-trap regression: a backend that *was* slow
        // keeps a scary EWMA forever, never receives traffic, and so can
        // never prove it recovered. With read-side decay its estimate drifts
        // down while it idles, routing re-probes it, and the fresh sample
        // restores its fair share.
        let run = |decay_half_life_ms: f64| -> u64 {
            let model = Arc::new(EchoModel::new("m"));
            let was_slow = AdjustableBackend::new(
                "was-slow",
                Arc::clone(&model) as Arc<dyn LanguageModel>,
                30,
            );
            let steady =
                AdjustableBackend::new("steady", Arc::clone(&model) as Arc<dyn LanguageModel>, 2);
            let pool = BackendPool::new(
                vec![
                    Arc::clone(&was_slow) as Arc<dyn Backend>,
                    Arc::clone(&steady) as Arc<dyn Backend>,
                ],
                RoutingPolicy::LatencyAware,
            )
            .unwrap()
            .with_latency_decay(decay_half_life_ms);
            // Cold exploration samples both: was-slow ~30ms, steady ~2ms.
            pool.complete(&CompletionRequest::new("w0")).unwrap();
            pool.complete(&CompletionRequest::new("w1")).unwrap();
            let calls_after_warmup = pool.stats()[0].calls;
            assert_eq!(calls_after_warmup, 1);
            // The slow backend recovers, then the pool idles a few
            // half-lives (stale estimates decay; nothing refreshes them).
            // ordering: Relaxed — test knob (single-threaded driver here).
            was_slow.delay_ms.store(2, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(200));
            for i in 0..10 {
                pool.complete(&CompletionRequest::new(format!("p{i}")))
                    .unwrap();
            }
            pool.stats()[0].calls - calls_after_warmup
        };
        let without_decay = run(0.0);
        assert_eq!(
            without_decay, 0,
            "without decay the recovered backend must stay starved (the bug)"
        );
        // Under CPU contention the re-probe's *measured* sample can come
        // back inflated and keep the backend mostly sidelined, so asserting
        // a fair share here is flaky; the invariant decay guarantees is that
        // the recovered backend is re-probed at all (without decay it is
        // provably starved forever).
        let with_decay = run(40.0);
        assert!(
            with_decay >= 1,
            "recovered backend was never re-probed; decay must restore it \
             to contention"
        );
    }

    #[test]
    fn least_in_flight_balances_under_concurrency() {
        // Two slow backends, four concurrent requests: least-in-flight must
        // use both (round robin would too, but a broken policy sending all
        // four to one backend is what this guards against).
        let specs = [
            spec("s1").with_latency_ms(20.0),
            spec("s2").with_latency_ms(20.0),
        ];
        let (_, pool) = pool_over(&specs, RoutingPolicy::LeastInFlight);
        let pool = Arc::new(pool);
        std::thread::scope(|scope| {
            for i in 0..4 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    pool.complete(&CompletionRequest::new(format!("p{i}")))
                        .unwrap()
                });
            }
        });
        let stats = pool.stats();
        assert!(
            stats.iter().all(|s| s.calls >= 1),
            "least-in-flight left a backend idle: {stats:?}"
        );
        assert!(stats.iter().all(|s| s.latency_ms > 0.0));
    }
}
