//! Deployment-scope prompt coalescing: single-flight dedup of identical
//! in-flight requests *across* clients and queries.
//!
//! The per-client cache plus [`crate::model::LlmClient`]'s in-flight
//! leadership already dedup identical prompts within one client. A
//! [`PromptCoalescer`] lifts that to the deployment: a scheduler attaches
//! one coalescer to the engine it owns, and every request dispatched through
//! the event-driven path first claims its request key here. The first
//! claimant (the **leader**) issues the physical call; concurrent claimants
//! of the same key (**followers**) park on the entry and receive a clone of
//! the leader's successful response — zero physical calls, while each query
//! still records its own *logical* call.
//!
//! The accounting contract:
//!
//! * Logical call counts (`ExecMetrics::llm_calls`, tenant charges) are
//!   recorded at wave-planning time, before coalescing — byte-identical with
//!   the coalescer on or off.
//! * Physical calls (`UsageStats::calls`, backend counters) are recorded
//!   only by leaders. Followers record nothing.
//! * Only **successes** fan out. A leader that fails (or is dropped
//!   mid-flight) abandons the entry; followers re-claim and issue their own
//!   physical call, so per-query retry/error semantics are unchanged.
//! * Entries are removed the moment they resolve: coalescing joins requests
//!   that are in flight *at the same time*, it is not a response cache.

use std::collections::HashMap;
use std::sync::Arc;

use llmsql_types::Result;
use parking_lot::Mutex;

use crate::model::CompletionResponse;

/// The state of one in-flight coalescing entry. Followers hold an `Arc` to
/// it and poll; the leader resolves it exactly once.
enum EntryState {
    /// The leader's physical call is still in flight.
    Pending,
    /// The leader completed successfully; followers clone this response.
    Done(CompletionResponse),
    /// The leader failed or was dropped. Followers must re-claim the key
    /// (the entry is already unlinked from the table).
    Abandoned,
}

/// One in-flight dedup entry, shared between the leader and its followers.
pub struct CoalesceEntry {
    state: Mutex<EntryState>,
}

/// What a follower observed when polling its entry.
pub enum FollowerPoll {
    /// The leader is still in flight; poll again later.
    Pending,
    /// The leader succeeded: here is a clone of its response.
    Ready(CompletionResponse),
    /// The leader failed or vanished; re-claim the key.
    Abandoned,
}

impl CoalesceEntry {
    /// Non-blocking follower poll.
    pub fn poll(&self) -> FollowerPoll {
        match &*self.state.lock() {
            EntryState::Pending => FollowerPoll::Pending,
            EntryState::Done(response) => FollowerPoll::Ready(response.clone()),
            EntryState::Abandoned => FollowerPoll::Abandoned,
        }
    }
}

/// The deployment-wide single-flight table. Cheap to share (`Arc`); one per
/// scheduler/deployment.
#[derive(Default)]
pub struct PromptCoalescer {
    entries: Mutex<HashMap<String, Arc<CoalesceEntry>>>,
    /// Lifetime counters (leaders claimed / followers served), advisory.
    stats: Mutex<CoalesceStats>,
}

/// Advisory lifetime counters of a [`PromptCoalescer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Requests that claimed leadership (issued a physical call).
    pub leaders: u64,
    /// Requests served a fanned-out clone (zero physical calls).
    pub followers_served: u64,
}

/// The outcome of claiming a key.
pub enum Claim {
    /// This request leads: issue the physical call, then resolve the guard.
    Leader(CoalesceGuard),
    /// An identical request is already in flight: park on the entry.
    Follower(Arc<CoalesceEntry>),
}

impl PromptCoalescer {
    /// Create an empty coalescer.
    pub fn new() -> Self {
        PromptCoalescer::default()
    }

    /// Claim `key`: the first claimant becomes the leader, concurrent
    /// claimants become followers of the leader's entry.
    pub fn claim(self: &Arc<Self>, key: &str) -> Claim {
        let mut entries = self.entries.lock();
        if let Some(entry) = entries.get(key) {
            let entry = Arc::clone(entry);
            drop(entries);
            self.stats.lock().followers_served += 1;
            return Claim::Follower(entry);
        }
        let entry = Arc::new(CoalesceEntry {
            state: Mutex::new(EntryState::Pending),
        });
        entries.insert(key.to_string(), Arc::clone(&entry));
        drop(entries);
        self.stats.lock().leaders += 1;
        Claim::Leader(CoalesceGuard {
            coalescer: Arc::clone(self),
            key: key.to_string(),
            entry: Some(entry),
        })
    }

    /// Advisory lifetime counters.
    pub fn stats(&self) -> CoalesceStats {
        *self.stats.lock()
    }

    /// Entries currently in flight (leaders without a resolution yet).
    pub fn in_flight(&self) -> usize {
        self.entries.lock().len()
    }

    /// Unlink `key` and resolve `entry` to `state`.
    fn resolve(&self, key: &str, entry: &CoalesceEntry, state: EntryState) {
        // Unlink first so late claimants start a fresh flight rather than
        // following a resolved entry (coalescing is not a cache).
        self.entries.lock().remove(key);
        *entry.state.lock() = state;
    }
}

/// Leadership over one in-flight key. The leader must call
/// [`CoalesceGuard::publish`] with its outcome; dropping the guard without
/// publishing (or publishing an error) abandons the entry so followers
/// re-claim and issue their own calls.
pub struct CoalesceGuard {
    coalescer: Arc<PromptCoalescer>,
    key: String,
    entry: Option<Arc<CoalesceEntry>>,
}

impl CoalesceGuard {
    /// Resolve the entry with the leader's outcome: successes fan out to
    /// every follower, failures abandon the entry (followers retry on their
    /// own physical calls, preserving per-query error semantics).
    pub fn publish(mut self, outcome: &Result<CompletionResponse>) {
        if let Some(entry) = self.entry.take() {
            let state = match outcome {
                Ok(response) => EntryState::Done(response.clone()),
                Err(_) => EntryState::Abandoned,
            };
            self.coalescer.resolve(&self.key, &entry, state);
        }
    }
}

impl Drop for CoalesceGuard {
    fn drop(&mut self) {
        if let Some(entry) = self.entry.take() {
            self.coalescer
                .resolve(&self.key, &entry, EntryState::Abandoned);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(text: &str) -> CompletionResponse {
        CompletionResponse {
            text: text.to_string(),
            prompt_tokens: 1,
            completion_tokens: 1,
            latency_ms: 0.0,
            cost_usd: 0.0,
        }
    }

    #[test]
    fn followers_receive_the_leaders_success() {
        let co = Arc::new(PromptCoalescer::new());
        let Claim::Leader(guard) = co.claim("k") else {
            panic!("first claim must lead");
        };
        let Claim::Follower(entry) = co.claim("k") else {
            panic!("second claim must follow");
        };
        assert!(matches!(entry.poll(), FollowerPoll::Pending));
        guard.publish(&Ok(response("answer")));
        match entry.poll() {
            FollowerPoll::Ready(r) => assert_eq!(r.text, "answer"),
            _ => panic!("follower must see the published response"),
        }
        assert_eq!(co.stats().leaders, 1);
        assert_eq!(co.stats().followers_served, 1);
        assert_eq!(co.in_flight(), 0);
    }

    #[test]
    fn failures_abandon_and_followers_reclaim() {
        let co = Arc::new(PromptCoalescer::new());
        let Claim::Leader(guard) = co.claim("k") else {
            panic!("first claim must lead");
        };
        let Claim::Follower(entry) = co.claim("k") else {
            panic!("second claim must follow");
        };
        guard.publish(&Err(llmsql_types::Error::llm("backend down")));
        assert!(matches!(entry.poll(), FollowerPoll::Abandoned));
        // The key is free again: the former follower can lead a retry.
        assert!(matches!(co.claim("k"), Claim::Leader(_)));
    }

    #[test]
    fn dropping_the_guard_abandons_the_entry() {
        let co = Arc::new(PromptCoalescer::new());
        let Claim::Leader(guard) = co.claim("k") else {
            panic!("first claim must lead");
        };
        let Claim::Follower(entry) = co.claim("k") else {
            panic!("second claim must follow");
        };
        drop(guard);
        assert!(matches!(entry.poll(), FollowerPoll::Abandoned));
        assert_eq!(co.in_flight(), 0);
    }

    #[test]
    fn resolved_entries_do_not_cache() {
        let co = Arc::new(PromptCoalescer::new());
        let Claim::Leader(guard) = co.claim("k") else {
            panic!("first claim must lead");
        };
        guard.publish(&Ok(response("a")));
        // The flight resolved; a later identical request starts fresh.
        assert!(matches!(co.claim("k"), Claim::Leader(_)));
    }

    #[test]
    fn distinct_keys_lead_independently() {
        let co = Arc::new(PromptCoalescer::new());
        let Claim::Leader(guard_a) = co.claim("a") else {
            panic!("first claim of 'a' must lead");
        };
        let Claim::Leader(guard_b) = co.claim("b") else {
            panic!("first claim of 'b' must lead");
        };
        assert_eq!(co.in_flight(), 2);
        guard_a.publish(&Ok(response("a")));
        guard_b.publish(&Ok(response("b")));
        assert_eq!(co.in_flight(), 0);
    }
}
