//! Usage accounting for LLM calls.

use std::fmt;

use crate::model::CompletionResponse;

/// Accumulated usage across a query, session or experiment run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UsageStats {
    /// Number of completions actually issued to the model.
    pub calls: u64,
    /// Completions served from the prompt cache.
    pub cache_hits: u64,
    /// Total prompt tokens sent.
    pub prompt_tokens: u64,
    /// Total completion tokens received.
    pub completion_tokens: u64,
    /// Total simulated dollar cost.
    pub cost_usd: f64,
    /// Total simulated latency in milliseconds (sequential sum).
    pub latency_ms: f64,
}

impl UsageStats {
    /// Record one response.
    pub fn record(&mut self, response: &CompletionResponse) {
        self.calls += 1;
        self.prompt_tokens += response.prompt_tokens as u64;
        self.completion_tokens += response.completion_tokens as u64;
        self.cost_usd += response.cost_usd;
        self.latency_ms += response.latency_ms;
    }

    /// Total tokens in either direction.
    pub fn total_tokens(&self) -> u64 {
        self.prompt_tokens + self.completion_tokens
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &UsageStats) {
        self.calls += other.calls;
        self.cache_hits += other.cache_hits;
        self.prompt_tokens += other.prompt_tokens;
        self.completion_tokens += other.completion_tokens;
        self.cost_usd += other.cost_usd;
        self.latency_ms += other.latency_ms;
    }

    /// The difference `self - baseline`, useful to isolate the usage of a
    /// single query from a shared client.
    pub fn since(&self, baseline: &UsageStats) -> UsageStats {
        UsageStats {
            calls: self.calls.saturating_sub(baseline.calls),
            cache_hits: self.cache_hits.saturating_sub(baseline.cache_hits),
            prompt_tokens: self.prompt_tokens.saturating_sub(baseline.prompt_tokens),
            completion_tokens: self
                .completion_tokens
                .saturating_sub(baseline.completion_tokens),
            cost_usd: (self.cost_usd - baseline.cost_usd).max(0.0),
            latency_ms: (self.latency_ms - baseline.latency_ms).max(0.0),
        }
    }
}

impl fmt::Display for UsageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} calls ({} cached), {} prompt tok, {} completion tok, ${:.4}, {:.0} ms",
            self.calls,
            self.cache_hits,
            self.prompt_tokens,
            self.completion_tokens,
            self.cost_usd,
            self.latency_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(pt: usize, ct: usize) -> CompletionResponse {
        CompletionResponse {
            text: String::new(),
            prompt_tokens: pt,
            completion_tokens: ct,
            latency_ms: 100.0,
            cost_usd: 0.01,
        }
    }

    #[test]
    fn record_accumulates() {
        let mut u = UsageStats::default();
        u.record(&resp(10, 5));
        u.record(&resp(20, 15));
        assert_eq!(u.calls, 2);
        assert_eq!(u.prompt_tokens, 30);
        assert_eq!(u.completion_tokens, 20);
        assert_eq!(u.total_tokens(), 50);
        assert!((u.cost_usd - 0.02).abs() < 1e-12);
        assert!((u.latency_ms - 200.0).abs() < 1e-9);
    }

    #[test]
    fn merge_and_since() {
        let mut a = UsageStats::default();
        a.record(&resp(10, 10));
        let snapshot = a.clone();
        a.record(&resp(5, 5));
        let delta = a.since(&snapshot);
        assert_eq!(delta.calls, 1);
        assert_eq!(delta.total_tokens(), 10);

        let mut b = UsageStats::default();
        b.merge(&a);
        b.merge(&delta);
        assert_eq!(b.calls, 3);
    }

    #[test]
    fn display_mentions_calls() {
        let mut u = UsageStats::default();
        u.record(&resp(1, 1));
        assert!(u.to_string().contains("1 calls"));
    }
}
