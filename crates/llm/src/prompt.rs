//! Prompt construction: turning relational requests into prompts.
//!
//! Every LLM-backed operator describes what it needs as a [`TaskSpec`]. The
//! spec renders to a prompt with three sections:
//!
//! * `### TASK` — a compact, machine-readable header (key/value lines). The
//!   simulator keys off this section; a real deployment benefits from it too
//!   because it pins the expected output format.
//! * `### CONTEXT` — the natural-language description of the virtual relation
//!   and its attributes, taken from the `COMMENT`s of the schema.
//! * `### INSTRUCTIONS` — the answer-format contract (one value per line,
//!   pipe-separated rows, "yes"/"no", ...).
//!
//! [`parse_task`] recovers the spec from a prompt; `build → parse` round-trips
//! (property-tested in `lib.rs`).

use llmsql_types::{Error, Result, Schema};

/// The kinds of requests the engine sends to the model.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskSpec {
    /// Enumerate entity keys of a virtual relation.
    Enumerate {
        /// Relation name.
        table: String,
        /// Optional SQL filter predicate (over the relation's columns).
        filter: Option<String>,
        /// Maximum number of keys to return.
        limit: usize,
        /// How many keys to skip (pagination).
        offset: usize,
    },
    /// Return whole rows (selected columns) of a virtual relation.
    RowBatch {
        /// Relation name.
        table: String,
        /// Columns to return, in order.
        columns: Vec<String>,
        /// Optional SQL filter predicate.
        filter: Option<String>,
        /// Maximum number of rows to return.
        limit: usize,
        /// How many rows to skip (pagination).
        offset: usize,
    },
    /// Return the requested attributes of a single entity.
    Lookup {
        /// Relation name.
        table: String,
        /// The entity key, rendered as text.
        key: String,
        /// Columns to return, in order.
        columns: Vec<String>,
    },
    /// Ask whether one entity satisfies a predicate (yes/no).
    FilterCheck {
        /// Relation name.
        table: String,
        /// The entity key, rendered as text.
        key: String,
        /// SQL predicate to check.
        condition: String,
    },
    /// Execute an entire SQL query in one shot.
    FullQuery {
        /// The SQL text.
        sql: String,
        /// The output column names the caller expects.
        columns: Vec<String>,
    },
}

impl TaskSpec {
    /// The relation this task targets (`None` for full-query prompts).
    pub fn table(&self) -> Option<&str> {
        match self {
            TaskSpec::Enumerate { table, .. }
            | TaskSpec::RowBatch { table, .. }
            | TaskSpec::Lookup { table, .. }
            | TaskSpec::FilterCheck { table, .. } => Some(table),
            TaskSpec::FullQuery { .. } => None,
        }
    }

    /// Short label for metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            TaskSpec::Enumerate { .. } => "enumerate",
            TaskSpec::RowBatch { .. } => "row_batch",
            TaskSpec::Lookup { .. } => "lookup",
            TaskSpec::FilterCheck { .. } => "filter_check",
            TaskSpec::FullQuery { .. } => "full_query",
        }
    }

    /// Render the `### TASK` header.
    fn header(&self) -> String {
        let mut lines = vec!["### TASK".to_string(), format!("kind: {}", self.kind())];
        match self {
            TaskSpec::Enumerate {
                table,
                filter,
                limit,
                offset,
            } => {
                lines.push(format!("table: {table}"));
                if let Some(f) = filter {
                    lines.push(format!("filter: {f}"));
                }
                lines.push(format!("limit: {limit}"));
                lines.push(format!("offset: {offset}"));
            }
            TaskSpec::RowBatch {
                table,
                columns,
                filter,
                limit,
                offset,
            } => {
                lines.push(format!("table: {table}"));
                lines.push(format!("columns: {}", columns.join(" | ")));
                if let Some(f) = filter {
                    lines.push(format!("filter: {f}"));
                }
                lines.push(format!("limit: {limit}"));
                lines.push(format!("offset: {offset}"));
            }
            TaskSpec::Lookup {
                table,
                key,
                columns,
            } => {
                lines.push(format!("table: {table}"));
                lines.push(format!("key: {key}"));
                lines.push(format!("columns: {}", columns.join(" | ")));
            }
            TaskSpec::FilterCheck {
                table,
                key,
                condition,
            } => {
                lines.push(format!("table: {table}"));
                lines.push(format!("key: {key}"));
                lines.push(format!("condition: {condition}"));
            }
            TaskSpec::FullQuery { sql, columns } => {
                lines.push(format!("sql: {sql}"));
                lines.push(format!("columns: {}", columns.join(" | ")));
            }
        }
        lines.join("\n")
    }

    /// Render the natural-language instruction section.
    fn instructions(&self) -> String {
        match self {
            TaskSpec::Enumerate {
                limit,
                filter,
                offset,
                ..
            } => {
                let mut s = format!(
                    "You are acting as the storage layer of a relational database. \
                     Using only your internal knowledge, list up to {limit} distinct entities \
                     of the relation described above"
                );
                if filter.is_some() {
                    s.push_str(" that satisfy the filter condition");
                }
                if *offset > 0 {
                    s.push_str(&format!(
                        ", skipping the first {offset} entities you would otherwise list"
                    ));
                }
                s.push_str(
                    ". Respond with exactly one entity identifier per line, no numbering, \
                     no commentary. If you know fewer entities, list only those you know.",
                );
                s
            }
            TaskSpec::RowBatch {
                limit,
                filter,
                offset,
                columns,
                ..
            } => {
                let mut s = format!(
                    "You are acting as the storage layer of a relational database. \
                     Produce up to {limit} rows of the relation described above, returning the \
                     columns [{}] in that exact order",
                    columns.join(", ")
                );
                if filter.is_some() {
                    s.push_str(", including only rows that satisfy the filter condition");
                }
                if *offset > 0 {
                    s.push_str(&format!(
                        ", skipping the first {offset} rows you would otherwise return"
                    ));
                }
                s.push_str(
                    ". Respond with one row per line, column values separated by \" | \". \
                     Write NULL for values you do not know. No header, no commentary.",
                );
                s
            }
            TaskSpec::Lookup { key, columns, .. } => format!(
                "You are acting as the storage layer of a relational database. For the single \
                 entity identified by \"{key}\", return the values of the columns [{}] in that \
                 exact order on one line, separated by \" | \". Write NULL for values you do \
                 not know. No commentary.",
                columns.join(", ")
            ),
            TaskSpec::FilterCheck { key, condition, .. } => format!(
                "Consider the entity identified by \"{key}\" in the relation described above. \
                 Does it satisfy the condition `{condition}`? Answer with exactly one word: \
                 \"yes\" or \"no\". If you are unsure, answer \"unknown\"."
            ),
            TaskSpec::FullQuery { sql, .. } => format!(
                "You are acting as a complete SQL database engine whose data is your internal \
                 world knowledge. Execute the following SQL query and return the result table:\n\
                 {sql}\n\
                 Respond with one result row per line, column values separated by \" | \", \
                 in the column order of the SELECT list. Write NULL for unknown values. \
                 No header, no commentary."
            ),
        }
    }

    /// Build the full prompt text for this task against the given schema.
    pub fn to_prompt(&self, schema: Option<&Schema>) -> String {
        let mut out = self.header();
        out.push_str("\n### CONTEXT\n");
        match schema {
            Some(s) => out.push_str(&describe_schema(s)),
            None => out.push_str("(no additional context)"),
        }
        out.push_str("\n### INSTRUCTIONS\n");
        out.push_str(&self.instructions());
        out
    }
}

/// Natural-language description of a relation used in the CONTEXT section.
pub fn describe_schema(schema: &Schema) -> String {
    let mut s = format!(
        "The relation '{}' describes {}.",
        schema.name,
        schema.prompt_phrase()
    );
    s.push_str(" Its columns are: ");
    let cols: Vec<String> = schema
        .columns
        .iter()
        .map(|c| {
            let mut d = format!("{} ({}", c.name, c.data_type.to_string().to_lowercase());
            if let Some(desc) = &c.description {
                d.push_str(&format!(", {desc}"));
            }
            if c.primary_key {
                d.push_str(", identifies the entity");
            }
            d.push(')');
            d
        })
        .collect();
    s.push_str(&cols.join("; "));
    s.push('.');
    s
}

/// Recover the [`TaskSpec`] from a prompt built by [`TaskSpec::to_prompt`].
pub fn parse_task(prompt: &str) -> Result<TaskSpec> {
    let task_section = prompt
        .split("### ")
        .find(|s| s.starts_with("TASK"))
        .ok_or_else(|| Error::llm("prompt has no ### TASK section"))?;
    let mut kind = None;
    let mut fields: Vec<(String, String)> = Vec::new();
    for line in task_section.lines().skip(1) {
        let Some((k, v)) = line.split_once(':') else {
            continue;
        };
        let k = k.trim().to_string();
        let v = v.trim().to_string();
        if k == "kind" {
            kind = Some(v);
        } else {
            fields.push((k, v));
        }
    }
    let kind = kind.ok_or_else(|| Error::llm("task header missing 'kind'"))?;
    let get = |name: &str| -> Option<String> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
    };
    let require = |name: &str| -> Result<String> {
        get(name).ok_or_else(|| Error::llm(format!("task header missing '{name}'")))
    };
    let parse_usize = |name: &str, default: usize| -> usize {
        get(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let parse_columns = |v: String| -> Vec<String> {
        v.split('|')
            .map(|c| c.trim().to_string())
            .filter(|c| !c.is_empty())
            .collect()
    };

    let spec = match kind.as_str() {
        "enumerate" => TaskSpec::Enumerate {
            table: require("table")?,
            filter: get("filter"),
            limit: parse_usize("limit", 100),
            offset: parse_usize("offset", 0),
        },
        "row_batch" => TaskSpec::RowBatch {
            table: require("table")?,
            columns: parse_columns(require("columns")?),
            filter: get("filter"),
            limit: parse_usize("limit", 100),
            offset: parse_usize("offset", 0),
        },
        "lookup" => TaskSpec::Lookup {
            table: require("table")?,
            key: require("key")?,
            columns: parse_columns(require("columns")?),
        },
        "filter_check" => TaskSpec::FilterCheck {
            table: require("table")?,
            key: require("key")?,
            condition: require("condition")?,
        },
        "full_query" => TaskSpec::FullQuery {
            sql: require("sql")?,
            columns: get("columns").map(parse_columns).unwrap_or_default(),
        },
        other => return Err(Error::llm(format!("unknown task kind '{other}'"))),
    };
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_types::{Column, DataType};

    fn schema() -> Schema {
        Schema::virtual_table(
            "countries",
            vec![
                Column::new("name", DataType::Text)
                    .primary_key()
                    .with_description("the common English name"),
                Column::new("capital", DataType::Text),
                Column::new("population", DataType::Int).with_description("population in 2023"),
            ],
        )
        .with_description("sovereign countries of the world")
    }

    #[test]
    fn describe_schema_mentions_columns_and_descriptions() {
        let d = describe_schema(&schema());
        assert!(d.contains("sovereign countries"));
        assert!(d.contains("population in 2023"));
        assert!(d.contains("identifies the entity"));
    }

    #[test]
    fn prompt_has_three_sections() {
        let spec = TaskSpec::RowBatch {
            table: "countries".into(),
            columns: vec!["name".into(), "population".into()],
            filter: Some("population > 50000000".into()),
            limit: 20,
            offset: 0,
        };
        let p = spec.to_prompt(Some(&schema()));
        assert!(p.contains("### TASK"));
        assert!(p.contains("### CONTEXT"));
        assert!(p.contains("### INSTRUCTIONS"));
        assert!(p.contains("kind: row_batch"));
        assert!(p.contains("filter: population > 50000000"));
    }

    #[test]
    fn roundtrip_all_kinds() {
        let specs = vec![
            TaskSpec::Enumerate {
                table: "countries".into(),
                filter: None,
                limit: 50,
                offset: 10,
            },
            TaskSpec::Enumerate {
                table: "countries".into(),
                filter: Some("(population > 1000)".into()),
                limit: 5,
                offset: 0,
            },
            TaskSpec::RowBatch {
                table: "countries".into(),
                columns: vec!["name".into(), "capital".into()],
                filter: Some("region = 'Europe'".into()),
                limit: 20,
                offset: 40,
            },
            TaskSpec::Lookup {
                table: "countries".into(),
                key: "France".into(),
                columns: vec!["capital".into(), "population".into()],
            },
            TaskSpec::FilterCheck {
                table: "countries".into(),
                key: "Japan".into(),
                condition: "population > 100000000".into(),
            },
            TaskSpec::FullQuery {
                sql: "SELECT name FROM countries WHERE population > 5".into(),
                columns: vec!["name".into()],
            },
        ];
        for spec in specs {
            let prompt = spec.to_prompt(Some(&schema()));
            let parsed = parse_task(&prompt).unwrap();
            assert_eq!(parsed, spec, "prompt was:\n{prompt}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_task("what is the capital of France?").is_err());
        assert!(parse_task("### TASK\ntable: t").is_err());
        assert!(parse_task("### TASK\nkind: teleport\ntable: t").is_err());
        assert!(parse_task("### TASK\nkind: lookup\ntable: t").is_err()); // missing key
    }

    #[test]
    fn task_accessors() {
        let spec = TaskSpec::Lookup {
            table: "t".into(),
            key: "k".into(),
            columns: vec!["a".into()],
        };
        assert_eq!(spec.table(), Some("t"));
        assert_eq!(spec.kind(), "lookup");
        let fq = TaskSpec::FullQuery {
            sql: "SELECT 1".into(),
            columns: vec![],
        };
        assert_eq!(fq.table(), None);
    }
}
