//! A simple prompt cache.
//!
//! Identical prompts within one engine session return the cached completion
//! without touching the model. Because the simulator is deterministic per
//! (seed, prompt) the cache does not change answers — it only changes the
//! call count and cost, which is exactly what the cost experiments measure.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::model::CompletionResponse;

/// A thread-safe prompt → completion cache.
#[derive(Default)]
pub struct PromptCache {
    map: RwLock<HashMap<String, CompletionResponse>>,
    hits: RwLock<u64>,
    misses: RwLock<u64>,
}

impl PromptCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        PromptCache::default()
    }

    /// Look up a prompt.
    pub fn get(&self, prompt: &str) -> Option<CompletionResponse> {
        let found = self.map.read().get(prompt).cloned();
        if found.is_some() {
            *self.hits.write() += 1;
        } else {
            *self.misses.write() += 1;
        }
        found
    }

    /// Store a completion.
    pub fn put(&self, prompt: String, response: CompletionResponse) {
        self.map.write().insert(prompt, response);
    }

    /// Number of cached prompts.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Remove all entries and reset counters.
    pub fn clear(&self) {
        self.map.write().clear();
        *self.hits.write() = 0;
        *self.misses.write() = 0;
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.read(), *self.misses.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(text: &str) -> CompletionResponse {
        CompletionResponse {
            text: text.to_string(),
            prompt_tokens: 1,
            completion_tokens: 1,
            latency_ms: 1.0,
            cost_usd: 0.0,
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let cache = PromptCache::new();
        assert!(cache.get("p").is_none());
        cache.put("p".into(), resp("r"));
        assert_eq!(cache.get("p").unwrap().text, "r");
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let cache = PromptCache::new();
        cache.get("a");
        cache.put("a".into(), resp("x"));
        cache.get("a");
        cache.get("b");
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn clear_resets_everything() {
        let cache = PromptCache::new();
        cache.put("a".into(), resp("x"));
        cache.get("a");
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
    }
}
