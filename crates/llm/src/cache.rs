//! A sharded prompt cache.
//!
//! Identical prompts within one engine session return the cached completion
//! without touching the model. Because the simulator is deterministic per
//! (seed, prompt) the cache does not change answers — it only changes the
//! call count and cost, which is exactly what the cost experiments measure.
//!
//! Keys are opaque strings; [`crate::LlmClient`] composes them from the model
//! fingerprint plus the request parameters (`max_tokens`, `temperature`) plus
//! the prompt, so one cache instance can safely be shared between clients
//! over different model configurations without collisions.
//!
//! The map is split into [`PromptCache::DEFAULT_SHARDS`] independently locked
//! shards selected by a hash of the prompt, so concurrent scan workers
//! completing different prompts do not serialize on one lock. Hit/miss
//! counters are lock-free `AtomicU64`s: a cache read costs one shard read
//! lock and one atomic increment (the old design took three lock
//! acquisitions per read).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::model::CompletionResponse;

/// A thread-safe, sharded prompt → completion cache.
pub struct PromptCache {
    shards: Box<[RwLock<HashMap<String, CompletionResponse>>]>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PromptCache {
    fn default() -> Self {
        PromptCache::new()
    }
}

impl PromptCache {
    /// Shard count used by [`PromptCache::new`].
    pub const DEFAULT_SHARDS: usize = 16;

    /// Create an empty cache with the default shard count.
    pub fn new() -> Self {
        PromptCache::with_shards(Self::DEFAULT_SHARDS)
    }

    /// Create an empty cache with an explicit shard count (rounded up to 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        PromptCache {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of shards the key space is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: &str) -> &RwLock<HashMap<String, CompletionResponse>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() % self.shards.len() as u64) as usize]
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<CompletionResponse> {
        let found = self.shard_for(key).read().get(key).cloned();
        // ordering: Relaxed — hit/miss are advisory statistics; nothing is
        // published under them and exact interleaving is irrelevant.
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Store a completion.
    pub fn put(&self, key: String, response: CompletionResponse) {
        self.shard_for(&key).write().insert(key, response);
    }

    /// Number of cached prompts.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Remove all entries and reset counters.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.write().clear();
        }
        // ordering: Relaxed — statistics reset; racing increments may land
        // on either side of the clear, both outcomes are valid snapshots.
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        // ordering: Relaxed — advisory statistics read; the pair need not
        // be mutually consistent.
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(text: &str) -> CompletionResponse {
        CompletionResponse {
            text: text.to_string(),
            prompt_tokens: 1,
            completion_tokens: 1,
            latency_ms: 1.0,
            cost_usd: 0.0,
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let cache = PromptCache::new();
        assert!(cache.get("p").is_none());
        cache.put("p".into(), resp("r"));
        assert_eq!(cache.get("p").unwrap().text, "r");
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let cache = PromptCache::new();
        cache.get("a");
        cache.put("a".into(), resp("x"));
        cache.get("a");
        cache.get("b");
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn clear_resets_everything() {
        let cache = PromptCache::new();
        cache.put("a".into(), resp("x"));
        cache.get("a");
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn entries_spread_across_shards() {
        let cache = PromptCache::with_shards(8);
        assert_eq!(cache.shard_count(), 8);
        for i in 0..200 {
            cache.put(format!("prompt-{i}"), resp("x"));
        }
        assert_eq!(cache.len(), 200);
        // With 200 keys over 8 shards, more than one shard must be populated.
        let populated = cache.shards.iter().filter(|s| !s.read().is_empty()).count();
        assert!(populated > 1, "all keys landed in one shard");
        for i in 0..200 {
            assert!(cache.get(&format!("prompt-{i}")).is_some());
        }
        assert_eq!(cache.stats(), (200, 0));
    }

    #[test]
    fn single_shard_still_works() {
        let cache = PromptCache::with_shards(0);
        assert_eq!(cache.shard_count(), 1);
        cache.put("p".into(), resp("r"));
        assert_eq!(cache.get("p").unwrap().text, "r");
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let cache = PromptCache::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..100 {
                        let key = format!("k-{t}-{i}");
                        cache.put(key.clone(), resp("v"));
                        assert!(cache.get(&key).is_some());
                        cache.get("shared-missing");
                    }
                });
            }
        });
        assert_eq!(cache.len(), 400);
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 400);
        assert_eq!(misses, 400);
    }
}
