//! A small deterministic tokenizer used for token accounting.
//!
//! The simulator does not need a real BPE vocabulary; it needs token counts
//! that scale the way real tokenizers do (roughly one token per short word or
//! punctuation mark, long words split into sub-word chunks) so that the cost
//! and latency models produce realistic relative numbers.

/// Maximum characters per sub-word chunk; real BPE pieces average ~4 chars.
const CHUNK: usize = 4;

/// A token produced by [`tokenize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenPiece {
    /// The piece text.
    pub text: String,
    /// Whether the piece was preceded by whitespace in the original text.
    pub leading_space: bool,
}

/// Split text into sub-word token pieces.
pub fn tokenize(text: &str) -> Vec<TokenPiece> {
    let mut out = Vec::new();
    let mut word = String::new();
    let mut pending_space = false;

    let flush = |word: &mut String, out: &mut Vec<TokenPiece>, leading: bool| {
        if word.is_empty() {
            return;
        }
        let chars: Vec<char> = word.chars().collect();
        let mut first = true;
        for chunk in chars.chunks(CHUNK) {
            out.push(TokenPiece {
                text: chunk.iter().collect(),
                leading_space: leading && first,
            });
            first = false;
        }
        word.clear();
    };

    for c in text.chars() {
        if c.is_whitespace() {
            flush(&mut word, &mut out, pending_space);
            pending_space = true;
        } else if c.is_alphanumeric() {
            word.push(c);
        } else {
            // punctuation is its own token
            flush(&mut word, &mut out, pending_space);
            out.push(TokenPiece {
                text: c.to_string(),
                leading_space: pending_space,
            });
            pending_space = false;
        }
    }
    flush(&mut word, &mut out, pending_space);
    out
}

/// Number of tokens in a text.
pub fn count_tokens(text: &str) -> usize {
    tokenize(text).len()
}

/// Reconstruct text from token pieces (whitespace is normalised to single
/// spaces; used only to check that tokenization loses no content).
pub fn detokenize(pieces: &[TokenPiece]) -> String {
    let mut out = String::new();
    for (i, p) in pieces.iter().enumerate() {
        if p.leading_space && i > 0 {
            out.push(' ');
        }
        out.push_str(&p.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_words_are_single_tokens() {
        assert_eq!(count_tokens("the cat sat"), 3);
    }

    #[test]
    fn long_words_split_into_chunks() {
        // "supersymmetrization" = 19 chars -> 5 chunks of <=4
        assert_eq!(count_tokens("supersymmetrization"), 5);
    }

    #[test]
    fn punctuation_counts() {
        assert_eq!(count_tokens("a,b"), 3);
        assert_eq!(count_tokens("SELECT * FROM t;"), 6);
    }

    #[test]
    fn empty_text() {
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("   "), 0);
    }

    #[test]
    fn detokenize_preserves_content_words() {
        let text = "List the population of France, Germany and Japan.";
        let pieces = tokenize(text);
        let rebuilt = detokenize(&pieces);
        // All alphanumeric content survives
        let strip = |s: &str| {
            s.chars()
                .filter(|c| c.is_alphanumeric())
                .collect::<String>()
        };
        assert_eq!(strip(&rebuilt), strip(text));
    }

    #[test]
    fn counts_scale_with_length() {
        let short = count_tokens("a b c");
        let long = count_tokens(&"a b c ".repeat(50));
        assert!(long > short * 40);
    }
}
