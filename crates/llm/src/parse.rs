//! Parsing model completions back into relational data.
//!
//! Completions are noisy: they may contain markdown bullets, stray
//! commentary, a header row the model added anyway, rows with the wrong
//! number of fields, or "I'm not sure" hedging. The parsers here are tolerant
//! by design — a malformed line is dropped (and counted) rather than aborting
//! the query, mirroring how the paper's prototype copes with free-form model
//! output.

use llmsql_types::{DataType, Row, Value};

/// Outcome of parsing a completion into rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParsedRows {
    /// Successfully parsed rows.
    pub rows: Vec<Row>,
    /// Lines that could not be interpreted and were dropped.
    pub dropped_lines: usize,
}

/// True for lines that are obviously not data (empty, commentary, separators).
fn is_noise_line(line: &str) -> bool {
    let t = line.trim();
    if t.is_empty() {
        return true;
    }
    let lower = t.to_ascii_lowercase();
    // markdown table separators and code fences
    if t.chars()
        .all(|c| matches!(c, '-' | '|' | '+' | ' ' | '=' | ':'))
    {
        return true;
    }
    if t.starts_with("```") {
        return true;
    }
    // parenthetical asides such as "(no results)" or "(unknown)"
    if t.starts_with('(') && t.ends_with(')') {
        return true;
    }
    // common hedging / commentary starts
    const CHATTER: [&str; 8] = [
        "here are",
        "here is",
        "sure",
        "note:",
        "i am",
        "i'm",
        "as an ai",
        "the following",
    ];
    CHATTER.iter().any(|p| lower.starts_with(p))
}

/// Strip leading enumeration markers such as `1. `, `2) `, `- `, `* `.
fn strip_bullet(line: &str) -> &str {
    let t = line.trim_start();
    // "- " / "* "
    if let Some(rest) = t.strip_prefix("- ").or_else(|| t.strip_prefix("* ")) {
        return rest;
    }
    // "12. " / "12) "
    let digits: usize = t.chars().take_while(|c| c.is_ascii_digit()).count();
    if digits > 0 && digits <= 3 {
        let rest = &t[digits..];
        if let Some(r) = rest.strip_prefix(". ").or_else(|| rest.strip_prefix(") ")) {
            return r;
        }
    }
    t
}

/// Parse a completion that should contain one scalar value per line.
pub fn parse_value_lines(text: &str, ty: DataType) -> ParsedRows {
    let mut out = ParsedRows::default();
    for line in text.lines() {
        if is_noise_line(line) {
            continue;
        }
        let cleaned = strip_bullet(line);
        let value = Value::from_llm_text(cleaned, ty);
        if value.is_null() && !cleaned.trim().is_empty() && ty != DataType::Text {
            // Numeric parse failure on a non-empty line: count as dropped.
            out.dropped_lines += 1;
            continue;
        }
        if value.is_null() && cleaned.trim().is_empty() {
            out.dropped_lines += 1;
            continue;
        }
        out.rows.push(Row::new(vec![value]));
    }
    out
}

/// Parse a completion that should contain pipe-separated rows with the given
/// column types. Rows with too few fields are padded with NULL; rows with too
/// many are truncated; rows that do not contain the separator at all (when
/// more than one column was requested) are dropped.
pub fn parse_pipe_rows(text: &str, types: &[DataType]) -> ParsedRows {
    let mut out = ParsedRows::default();
    let arity = types.len().max(1);
    let mut header_names: Option<Vec<String>> = None;

    for line in text.lines() {
        if is_noise_line(line) {
            continue;
        }
        let cleaned = strip_bullet(line);
        let raw_fields: Vec<&str> = cleaned.split('|').map(|f| f.trim()).collect();
        if arity > 1 && raw_fields.len() == 1 {
            out.dropped_lines += 1;
            continue;
        }
        // Detect and skip a header row the model added anyway: all fields are
        // non-numeric words and it is the first data line.
        if header_names.is_none() && out.rows.is_empty() {
            let nullish = |f: &str| {
                matches!(
                    f.to_ascii_lowercase().as_str(),
                    "null" | "none" | "n/a" | "na" | "unknown" | "nil" | "-" | "?"
                )
            };
            let looks_like_header = raw_fields.len() == arity
                && raw_fields.iter().all(|f| !f.is_empty() && !nullish(f))
                && raw_fields
                    .iter()
                    .zip(types)
                    .any(|(f, ty)| ty.is_numeric() && f.parse::<f64>().is_err());
            if looks_like_header {
                header_names = Some(raw_fields.iter().map(|s| s.to_string()).collect());
                continue;
            }
        }
        let mut values = Vec::with_capacity(arity);
        for i in 0..arity {
            let ty = types.get(i).copied().unwrap_or(DataType::Text);
            let field = raw_fields.get(i).copied().unwrap_or("");
            values.push(Value::from_llm_text(field, ty));
        }
        let row = Row::new(values);
        if row.all_null() {
            out.dropped_lines += 1;
            continue;
        }
        out.rows.push(row);
    }
    out
}

/// The three-valued answer of a yes/no prompt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YesNoAnswer {
    /// The model said yes.
    Yes,
    /// The model said no.
    No,
    /// The model hedged or answered something unusable.
    Unknown,
}

/// Parse a yes/no completion.
pub fn parse_yes_no(text: &str) -> YesNoAnswer {
    let lower = text.trim().to_ascii_lowercase();
    let first_word: String = lower
        .chars()
        .take_while(|c| c.is_ascii_alphabetic())
        .collect();
    match first_word.as_str() {
        "yes" | "y" | "true" => YesNoAnswer::Yes,
        "no" | "n" | "false" => YesNoAnswer::No,
        "unknown" | "unsure" | "uncertain" | "maybe" => YesNoAnswer::Unknown,
        _ => {
            // Fall back to whole-word search so "unknown" does not match "no".
            let words: Vec<String> = lower
                .split(|c: char| !c.is_ascii_alphabetic())
                .filter(|w| !w.is_empty())
                .map(|w| w.to_string())
                .collect();
            let has_yes = words.iter().any(|w| w == "yes");
            let has_no = words.iter().any(|w| w == "no" || w == "not");
            match (has_yes, has_no) {
                (true, false) => YesNoAnswer::Yes,
                (false, true) => YesNoAnswer::No,
                _ => YesNoAnswer::Unknown,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_lines_basic() {
        let parsed = parse_value_lines("France\nGermany\nJapan\n", DataType::Text);
        assert_eq!(parsed.rows.len(), 3);
        assert_eq!(parsed.dropped_lines, 0);
        assert_eq!(parsed.rows[0].get(0), &Value::Text("France".into()));
    }

    #[test]
    fn value_lines_with_bullets_and_chatter() {
        let text = "Here are the countries you asked for:\n1. France\n2. Germany\n- Japan\n";
        let parsed = parse_value_lines(text, DataType::Text);
        assert_eq!(parsed.rows.len(), 3);
    }

    #[test]
    fn value_lines_numeric_garbage_dropped() {
        let parsed = parse_value_lines("12\nabc\n15\n", DataType::Int);
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(parsed.dropped_lines, 1);
    }

    #[test]
    fn pipe_rows_basic() {
        let parsed = parse_pipe_rows(
            "France | Paris | 68000000\nJapan | Tokyo | 125000000\n",
            &[DataType::Text, DataType::Text, DataType::Int],
        );
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(parsed.rows[1].get(2), &Value::Int(125000000));
    }

    #[test]
    fn pipe_rows_pad_and_truncate() {
        let parsed = parse_pipe_rows(
            "France | Paris\nJapan | Tokyo | 125 | extra\n",
            &[DataType::Text, DataType::Text, DataType::Int],
        );
        assert_eq!(parsed.rows.len(), 2);
        assert!(parsed.rows[0].get(2).is_null());
        assert_eq!(parsed.rows[1].arity(), 3);
    }

    #[test]
    fn pipe_rows_skip_header_and_separator() {
        let text = "name | capital | population\n--- | --- | ---\nFrance | Paris | 68000000\n";
        let parsed = parse_pipe_rows(text, &[DataType::Text, DataType::Text, DataType::Int]);
        assert_eq!(parsed.rows.len(), 1);
        assert_eq!(parsed.rows[0].get(0), &Value::Text("France".into()));
    }

    #[test]
    fn pipe_rows_drop_unsplittable_lines() {
        let parsed = parse_pipe_rows(
            "I could not find that information\nFrance | Paris\n",
            &[DataType::Text, DataType::Text],
        );
        assert_eq!(parsed.rows.len(), 1);
        assert_eq!(parsed.dropped_lines, 1);
    }

    #[test]
    fn pipe_rows_single_column() {
        let parsed = parse_pipe_rows("France\nGermany\n", &[DataType::Text]);
        assert_eq!(parsed.rows.len(), 2);
    }

    #[test]
    fn pipe_rows_null_fields() {
        let parsed = parse_pipe_rows(
            "Peru | NULL | unknown\n",
            &[DataType::Text, DataType::Text, DataType::Int],
        );
        assert_eq!(parsed.rows.len(), 1);
        assert!(parsed.rows[0].get(1).is_null());
        assert!(parsed.rows[0].get(2).is_null());
    }

    #[test]
    fn all_null_rows_dropped() {
        let parsed = parse_pipe_rows("NULL | NULL\n", &[DataType::Text, DataType::Int]);
        assert_eq!(parsed.rows.len(), 0);
        assert_eq!(parsed.dropped_lines, 1);
    }

    #[test]
    fn yes_no_parsing() {
        assert_eq!(parse_yes_no("yes"), YesNoAnswer::Yes);
        assert_eq!(parse_yes_no("Yes."), YesNoAnswer::Yes);
        assert_eq!(parse_yes_no(" NO "), YesNoAnswer::No);
        assert_eq!(parse_yes_no("unknown"), YesNoAnswer::Unknown);
        assert_eq!(
            parse_yes_no("I believe the answer is yes"),
            YesNoAnswer::Yes
        );
        assert_eq!(parse_yes_no("definitely not, no"), YesNoAnswer::No);
        assert_eq!(parse_yes_no(""), YesNoAnswer::Unknown);
    }

    #[test]
    fn code_fences_ignored() {
        let parsed = parse_pipe_rows(
            "```\nFrance | Paris\n```\n",
            &[DataType::Text, DataType::Text],
        );
        assert_eq!(parsed.rows.len(), 1);
    }
}
