//! The simulated "parametric knowledge" of the language model.
//!
//! The paper's storage device is the world knowledge a commercial LLM
//! absorbed during pre-training. The reproduction substitutes an explicit
//! [`KnowledgeBase`]: a set of relations whose rows stand in for the facts the
//! model knows. The simulator answers prompts by querying this knowledge base
//! and then passing the answers through the noise model — so the *same world*
//! backs both the LLM storage and the relational ground-truth oracle, and
//! accuracy can be measured exactly.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use llmsql_types::{Error, Result, Row, Schema, Value};

/// One relation of the knowledge base.
#[derive(Debug, Clone)]
pub struct KbTable {
    /// The relation schema (including prompt descriptions).
    pub schema: Schema,
    /// The facts: one row per entity.
    pub rows: Vec<Row>,
    /// Index from normalised key value to row position.
    key_index: HashMap<String, usize>,
    /// Which column is the entity key.
    key_col: usize,
}

/// Normalise an entity key for fuzzy lookup (case/whitespace-insensitive).
pub fn normalize_key(value: &Value) -> String {
    value.to_display_string().trim().to_ascii_lowercase()
}

impl KbTable {
    /// Build a knowledge-base relation from a schema and rows.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        let key_col = schema
            .columns
            .iter()
            .position(|c| c.primary_key)
            .unwrap_or(0);
        let mut key_index = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            key_index.insert(normalize_key(row.get(key_col)), i);
        }
        KbTable {
            schema,
            rows,
            key_index,
            key_col,
        }
    }

    /// The entity-key column index.
    pub fn key_column(&self) -> usize {
        self.key_col
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation has no entities.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All entity keys, in storage order.
    pub fn entity_keys(&self) -> Vec<Value> {
        self.rows
            .iter()
            .map(|r| r.get(self.key_col).clone())
            .collect()
    }

    /// Find the full row for an entity key (fuzzy: case-insensitive match of
    /// the rendered value).
    pub fn row_for_key(&self, key: &Value) -> Option<&Row> {
        self.key_index
            .get(&normalize_key(key))
            .and_then(|&i| self.rows.get(i))
    }

    /// Look up one attribute of one entity.
    pub fn fact(&self, key: &Value, column: &str) -> Option<Value> {
        let col = self.schema.index_of(column)?;
        self.row_for_key(key).map(|r| r.get(col).clone())
    }
}

/// The complete simulated world knowledge.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    tables: BTreeMap<String, KbTable>,
}

impl KnowledgeBase {
    /// Create an empty knowledge base.
    pub fn new() -> Self {
        KnowledgeBase::default()
    }

    /// Add a relation. Replaces any existing relation of the same name.
    pub fn add_table(&mut self, schema: Schema, rows: Vec<Row>) {
        let name = schema.name.clone();
        self.tables.insert(name, KbTable::new(schema, rows));
    }

    /// Names of all relations.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if the knowledge base holds no relations.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of facts (non-null attribute values) across relations.
    pub fn fact_count(&self) -> usize {
        self.tables
            .values()
            .map(|t| {
                t.rows
                    .iter()
                    .map(|r| r.values().iter().filter(|v| !v.is_null()).count())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Look up a relation by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Result<&KbTable> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::llm(format!("the model knows no relation named '{name}'")))
    }

    /// True if a relation with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Wrap in an `Arc` for sharing with the simulator.
    pub fn into_shared(self) -> Arc<KnowledgeBase> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_types::{Column, DataType};

    fn kb() -> KnowledgeBase {
        let schema = Schema::new(
            "countries",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("capital", DataType::Text),
                Column::new("population", DataType::Int),
            ],
        );
        let rows = vec![
            Row::new(vec![
                "France".into(),
                "Paris".into(),
                Value::Int(68_000_000),
            ]),
            Row::new(vec![
                "Japan".into(),
                "Tokyo".into(),
                Value::Int(125_000_000),
            ]),
            Row::new(vec!["Peru".into(), "Lima".into(), Value::Null]),
        ];
        let mut kb = KnowledgeBase::new();
        kb.add_table(schema, rows);
        kb
    }

    #[test]
    fn table_lookup_case_insensitive() {
        let kb = kb();
        assert!(kb.table("Countries").is_ok());
        assert!(kb.table("unknown").is_err());
        assert!(kb.contains("COUNTRIES"));
        assert_eq!(kb.table_names(), vec!["countries".to_string()]);
        assert_eq!(kb.len(), 1);
    }

    #[test]
    fn entity_keys_and_rows() {
        let kb = kb();
        let t = kb.table("countries").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.key_column(), 0);
        assert_eq!(
            t.entity_keys(),
            vec![
                Value::Text("France".into()),
                Value::Text("Japan".into()),
                Value::Text("Peru".into())
            ]
        );
        // fuzzy key match
        let row = t.row_for_key(&Value::Text("  france ".into())).unwrap();
        assert_eq!(row.get(1), &Value::Text("Paris".into()));
        assert!(t.row_for_key(&Value::Text("Narnia".into())).is_none());
    }

    #[test]
    fn fact_lookup() {
        let kb = kb();
        let t = kb.table("countries").unwrap();
        assert_eq!(
            t.fact(&Value::Text("Japan".into()), "capital"),
            Some(Value::Text("Tokyo".into()))
        );
        assert_eq!(
            t.fact(&Value::Text("Peru".into()), "population"),
            Some(Value::Null)
        );
        assert_eq!(t.fact(&Value::Text("Japan".into()), "bogus"), None);
        assert_eq!(t.fact(&Value::Text("Narnia".into()), "capital"), None);
    }

    #[test]
    fn fact_count_ignores_nulls() {
        let kb = kb();
        // 3 rows x 3 cols = 9 cells, one NULL
        assert_eq!(kb.fact_count(), 8);
    }

    #[test]
    fn add_table_replaces() {
        let mut kb = kb();
        let schema = Schema::new("countries", vec![Column::new("name", DataType::Text)]);
        kb.add_table(schema, vec![Row::new(vec!["X".into()])]);
        assert_eq!(kb.table("countries").unwrap().len(), 1);
    }
}
