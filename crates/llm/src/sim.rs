//! The simulated language model.
//!
//! `SimLlm` implements [`LanguageModel`] by interpreting the structured
//! `### TASK` header of each prompt, consulting the [`KnowledgeBase`] through
//! the [`NoiseModel`], and rendering a *textual* completion the way a real
//! model would (one value per line, pipe-separated rows, yes/no words,
//! occasional formatting violations and hedging). The engine then has to
//! parse that text back — so the full prompt → completion → parse pipeline is
//! exercised end to end.
//!
//! Design notes:
//!
//! * Whether the model "knows" an entity or attribute is a stable function of
//!   `(seed, table, key, column)` (see [`NoiseModel`]), so paginated and
//!   repeated prompts observe a consistent world.
//! * The full-query task runs a crude internal interpreter over the model's
//!   *observed* (noisy) view of the data, with an extra reliability penalty
//!   per join — mirroring the empirical finding that one-shot whole-query
//!   prompting degrades quickly with query complexity.
//! * `SimLlm` is fully thread-safe and cheap to call from many scan workers
//!   at once: it carries no interior mutability or shared RNG stream. Every
//!   noise decision is re-derived per call from a hash of
//!   `(seed, table, entity, column)` / `(seed, prompt, line)` — the moral
//!   equivalent of a per-call RNG seeded with `seed ⊕ hash(prompt)` — so
//!   fidelity noise is byte-identical regardless of how calls interleave
//!   across threads.

use std::sync::Arc;

use llmsql_sql::ast::{
    AggregateFunc, Expr, JoinKind, SelectItem, SelectStatement, Statement, TableExpr,
};
use llmsql_sql::parse_statement;
use llmsql_types::{DataType, Error, LlmCostModel, LlmFidelity, Result, Row, Schema, Value};

use crate::eval::{eval_expr, eval_predicate_text};
use crate::knowledge::{normalize_key, KnowledgeBase};
use crate::model::{CompletionRequest, CompletionResponse, LanguageModel};
use crate::noise::{hash01, NoiseModel};
use crate::prompt::{parse_task, TaskSpec};
use crate::tokenizer::count_tokens;

/// The simulated model.
pub struct SimLlm {
    kb: Arc<KnowledgeBase>,
    noise: NoiseModel,
    cost_model: LlmCostModel,
    /// Upper bound on rows the simulator will ever emit for one prompt
    /// (defensive cap, roughly a context-window limit).
    max_rows_per_completion: usize,
    /// When nonzero, `complete` blocks the calling thread for this many
    /// milliseconds per request, emulating the network round-trip of a real
    /// endpoint. Parallel-dispatch benchmarks use this to make request
    /// overlap observable in wall-clock time.
    simulated_latency_ms: f64,
}

impl SimLlm {
    /// Create a simulator over the given knowledge base.
    pub fn new(kb: Arc<KnowledgeBase>, fidelity: LlmFidelity, seed: u64) -> Self {
        SimLlm {
            kb,
            noise: NoiseModel::new(fidelity, seed),
            cost_model: LlmCostModel::default(),
            max_rows_per_completion: 500,
            simulated_latency_ms: 0.0,
        }
    }

    /// Override the cost model.
    pub fn with_cost_model(mut self, cost_model: LlmCostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Make every `complete` call sleep for `ms` milliseconds, emulating
    /// endpoint latency (0 disables; negative values are clamped to 0).
    pub fn with_simulated_latency_ms(mut self, ms: f64) -> Self {
        self.simulated_latency_ms = ms.max(0.0);
        self
    }

    /// The fidelity this simulator was configured with.
    pub fn fidelity(&self) -> LlmFidelity {
        self.noise.fidelity
    }

    /// The knowledge base backing this simulator.
    pub fn knowledge(&self) -> &Arc<KnowledgeBase> {
        &self.kb
    }

    // ------------------------------------------------------------------
    // Observed world: the model's (noisy) view of the knowledge base
    // ------------------------------------------------------------------

    /// The value the model reports for one attribute of one entity, or `None`
    /// when it omits the attribute.
    fn observe_attr(
        &self,
        table: &str,
        key_norm: &str,
        schema: &Schema,
        row: &Row,
        col: usize,
    ) -> Option<Value> {
        let column = &schema.columns[col];
        if column.primary_key {
            // The identifier itself is what the model was asked about; it is
            // reproduced verbatim.
            return Some(row.get(col).clone());
        }
        self.noise.observe_fact(
            table,
            key_norm,
            &column.name,
            row.get(col),
            column.data_type,
        )
    }

    /// The model's observed version of a full row (omitted attributes become
    /// NULL).
    fn observe_row(&self, table: &str, schema: &Schema, row: &Row) -> Row {
        let key_col = schema
            .columns
            .iter()
            .position(|c| c.primary_key)
            .unwrap_or(0);
        let key_norm = normalize_key(row.get(key_col));
        let values: Vec<Value> = (0..schema.arity())
            .map(|i| {
                self.observe_attr(table, &key_norm, schema, row, i)
                    .unwrap_or(Value::Null)
            })
            .collect();
        Row::new(values)
    }

    /// All rows of a relation as the model believes them to be: unknown
    /// entities are missing, fabricated entities are appended.
    fn observed_table(&self, table: &str) -> Result<(Schema, Vec<Row>)> {
        let kb_table = self.kb.table(table)?;
        let schema = kb_table.schema.clone();
        let key_col = kb_table.key_column();
        let mut rows = Vec::new();
        for row in &kb_table.rows {
            let key_norm = normalize_key(row.get(key_col));
            if !self.noise.knows_entity(table, &key_norm) {
                continue;
            }
            rows.push(self.observe_row(table, &schema, row));
        }
        // Fabricated entities.
        let fabricated = self.noise.fabricated_entity_count(table, rows.len());
        for i in 0..fabricated {
            let key = self.noise.fabricate_entity_key(table, i);
            let key_norm = normalize_key(&key);
            let values: Vec<Value> = schema
                .columns
                .iter()
                .enumerate()
                .map(|(c, col)| {
                    if c == key_col {
                        key.clone()
                    } else {
                        self.noise
                            .fabricate_value(table, &key_norm, &col.name, col.data_type)
                    }
                })
                .collect();
            rows.push(Row::new(values));
        }
        Ok((schema, rows))
    }

    // ------------------------------------------------------------------
    // Task handlers
    // ------------------------------------------------------------------

    fn handle_enumerate(
        &self,
        table: &str,
        filter: Option<&str>,
        limit: usize,
        offset: usize,
    ) -> Result<Vec<String>> {
        let (schema, rows) = self.observed_table(table)?;
        let key_col = schema
            .columns
            .iter()
            .position(|c| c.primary_key)
            .unwrap_or(0);
        let mut keys = Vec::new();
        for row in &rows {
            if let Some(pred) = filter {
                match eval_predicate_text(&schema, row, pred) {
                    Ok(Some(true)) => {}
                    Ok(_) => continue,
                    // A predicate the "model" cannot make sense of is simply
                    // ignored (it lists everything) — a realistic failure.
                    Err(_) => {}
                }
            }
            keys.push(row.get(key_col).to_display_string());
        }
        Ok(keys
            .into_iter()
            .skip(offset)
            .take(limit.min(self.max_rows_per_completion))
            .collect())
    }

    fn handle_row_batch(
        &self,
        table: &str,
        columns: &[String],
        filter: Option<&str>,
        limit: usize,
        offset: usize,
    ) -> Result<Vec<String>> {
        let (schema, rows) = self.observed_table(table)?;
        let col_indices: Vec<Option<usize>> = columns.iter().map(|c| schema.index_of(c)).collect();
        let mut lines = Vec::new();
        for row in &rows {
            if let Some(pred) = filter {
                match eval_predicate_text(&schema, row, pred) {
                    Ok(Some(true)) => {}
                    Ok(_) => continue,
                    Err(_) => {}
                }
            }
            let fields: Vec<String> = col_indices
                .iter()
                .map(|idx| match idx {
                    Some(i) => row.get(*i).to_display_string(),
                    None => "NULL".to_string(),
                })
                .collect();
            lines.push(fields.join(" | "));
        }
        Ok(lines
            .into_iter()
            .skip(offset)
            .take(limit.min(self.max_rows_per_completion))
            .collect())
    }

    fn handle_lookup(&self, table: &str, key: &str, columns: &[String]) -> Result<Vec<String>> {
        let kb_table = self.kb.table(table)?;
        let schema = &kb_table.schema;
        let key_value = Value::Text(key.to_string());
        let key_norm = normalize_key(&key_value);
        let row = kb_table.row_for_key(&key_value);

        let known = row.is_some() && self.noise.knows_entity(table, &key_norm);
        let fields: Vec<String> = columns
            .iter()
            .map(|c| {
                let Some(col) = schema.index_of(c) else {
                    return "NULL".to_string();
                };
                if known {
                    let row = row.expect("known implies row");
                    match self.observe_attr(table, &key_norm, schema, row, col) {
                        Some(v) => v.to_display_string(),
                        None => "unknown".to_string(),
                    }
                } else if self.noise.hallucinates_fact(table, &key_norm, c) {
                    self.noise
                        .fabricate_value(table, &key_norm, c, schema.columns[col].data_type)
                        .to_display_string()
                } else {
                    "unknown".to_string()
                }
            })
            .collect();
        Ok(vec![fields.join(" | ")])
    }

    fn handle_filter_check(&self, table: &str, key: &str, condition: &str) -> Result<Vec<String>> {
        let kb_table = self.kb.table(table)?;
        let schema = kb_table.schema.clone();
        let key_value = Value::Text(key.to_string());
        let key_norm = normalize_key(&key_value);
        let Some(row) = kb_table.row_for_key(&key_value) else {
            // Unknown entity: hedge, or guess when hallucinating.
            return Ok(vec![
                if self.noise.hallucinates_fact(table, &key_norm, condition) {
                    if hash01(&["guess", table, &key_norm, condition], self.noise.seed) < 0.5 {
                        "yes".to_string()
                    } else {
                        "no".to_string()
                    }
                } else {
                    "unknown".to_string()
                },
            ]);
        };
        if !self.noise.knows_entity(table, &key_norm) {
            return Ok(vec!["unknown".to_string()]);
        }
        let observed = self.observe_row(table, &schema, row);
        let answer = match eval_predicate_text(&schema, &observed, condition) {
            Ok(Some(true)) => "yes",
            Ok(Some(false)) => "no",
            Ok(None) => "unknown",
            Err(_) => "unknown",
        };
        Ok(vec![answer.to_string()])
    }

    // ------------------------------------------------------------------
    // Full-query interpretation (one-shot prompting)
    // ------------------------------------------------------------------

    fn handle_full_query(&self, sql: &str) -> Result<Vec<String>> {
        let stmt = match parse_statement(sql) {
            Ok(Statement::Select(s)) => *s,
            Ok(_) => return Err(Error::llm("full-query prompts must contain a SELECT")),
            Err(e) => return Err(Error::llm(format!("the model could not read the SQL: {e}"))),
        };
        let (names, mut rows) = self.eval_from(&stmt)?;

        // WHERE
        if let Some(pred) = &stmt.selection {
            let pred = rewrite_columns(pred, &names)?;
            let schema = flat_schema(&names);
            rows.retain(|r| {
                matches!(eval_expr(&schema, r, &pred), Ok(Value::Bool(true)))
                    || matches!(eval_expr(&schema, r, &pred), Ok(Value::Int(i)) if i != 0)
            });
        }

        // Join penalty: one-shot prompting over joined relations is less
        // reliable; each surviving row is dropped with a probability that
        // grows with the number of joins.
        let join_count = stmt.from.as_ref().map(|f| f.join_count()).unwrap_or(0);
        if join_count > 0 {
            let penalty = ((1.0 - self.noise.fidelity.recall) * 0.5 * join_count as f64).min(0.9);
            rows.retain(|r| {
                hash01(&["join_penalty", &r.to_pipe_string()], self.noise.seed) >= penalty
            });
        }

        let schema = flat_schema(&names);
        let mut out_rows: Vec<Vec<Value>> = Vec::new();

        if stmt.is_aggregate() {
            out_rows = self.eval_aggregate(&stmt, &names, &schema, &rows)?;
        } else {
            for row in &rows {
                let mut out = Vec::new();
                for item in &stmt.projection {
                    match item {
                        SelectItem::Wildcard => {
                            out.extend(row.values().iter().cloned());
                        }
                        SelectItem::QualifiedWildcard(q) => {
                            for (i, (qual, _)) in names.iter().enumerate() {
                                if qual.as_deref() == Some(q.as_str()) {
                                    out.push(row.get(i).clone());
                                }
                            }
                        }
                        SelectItem::Expr { expr, .. } => {
                            let e = rewrite_columns(expr, &names)?;
                            out.push(eval_expr(&schema, row, &e).unwrap_or(Value::Null));
                        }
                    }
                }
                out_rows.push(out);
            }
        }

        // ORDER BY (best effort: only plain column references are honoured).
        if !stmt.order_by.is_empty() && !stmt.is_aggregate() {
            if let Some(first) = stmt.order_by.first() {
                if let Ok(e) = rewrite_columns(&first.expr, &names) {
                    let schema = flat_schema(&names);
                    let mut keyed: Vec<(Value, Vec<Value>)> = rows
                        .iter()
                        .zip(out_rows.iter())
                        .map(|(r, o)| (eval_expr(&schema, r, &e).unwrap_or(Value::Null), o.clone()))
                        .collect();
                    keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
                    if !first.ascending {
                        keyed.reverse();
                    }
                    out_rows = keyed.into_iter().map(|(_, o)| o).collect();
                }
            }
        }

        if let Some(offset) = stmt.offset {
            out_rows = out_rows.into_iter().skip(offset as usize).collect();
        }
        if let Some(limit) = stmt.limit {
            out_rows.truncate(limit as usize);
        }
        out_rows.truncate(self.max_rows_per_completion);

        Ok(out_rows
            .into_iter()
            .map(|vals| {
                vals.iter()
                    .map(|v| v.to_display_string())
                    .collect::<Vec<_>>()
                    .join(" | ")
            })
            .collect())
    }

    /// Evaluate the FROM clause into a flat list of qualified column names and
    /// joined (observed) rows.
    #[allow(clippy::type_complexity)]
    fn eval_from(
        &self,
        stmt: &SelectStatement,
    ) -> Result<(Vec<(Option<String>, String)>, Vec<Row>)> {
        let Some(from) = &stmt.from else {
            return Ok((vec![], vec![Row::empty()]));
        };
        self.eval_table_expr(from)
    }

    #[allow(clippy::type_complexity)]
    fn eval_table_expr(
        &self,
        expr: &TableExpr,
    ) -> Result<(Vec<(Option<String>, String)>, Vec<Row>)> {
        match expr {
            TableExpr::Table { name, alias } => {
                let (schema, rows) = self.observed_table(name)?;
                let qual = alias.clone().unwrap_or_else(|| name.clone());
                let names = schema
                    .columns
                    .iter()
                    .map(|c| (Some(qual.to_ascii_lowercase()), c.name.clone()))
                    .collect();
                Ok((names, rows))
            }
            TableExpr::Subquery { .. } => Err(Error::llm(
                "the model does not interpret subqueries in one-shot prompts",
            )),
            TableExpr::Join {
                left,
                right,
                kind,
                on,
            } => {
                let (lnames, lrows) = self.eval_table_expr(left)?;
                let (rnames, rrows) = self.eval_table_expr(right)?;
                let mut names = lnames.clone();
                names.extend(rnames.iter().cloned());
                let schema = flat_schema(&names);
                let on_expr = match on {
                    Some(o) => Some(rewrite_columns(o, &names)?),
                    None => None,
                };
                let mut rows = Vec::new();
                for l in &lrows {
                    let mut matched = false;
                    for r in &rrows {
                        let combined = l.concat(r);
                        let keep = match &on_expr {
                            Some(e) => {
                                matches!(eval_expr(&schema, &combined, e), Ok(Value::Bool(true)))
                            }
                            None => true,
                        };
                        if keep {
                            matched = true;
                            rows.push(combined);
                        }
                    }
                    if !matched && *kind == JoinKind::Left {
                        let mut combined = l.clone();
                        combined.resize(names.len());
                        rows.push(combined);
                    }
                    if rows.len() > self.max_rows_per_completion * 4 {
                        break;
                    }
                }
                Ok((names, rows))
            }
        }
    }

    fn eval_aggregate(
        &self,
        stmt: &SelectStatement,
        names: &[(Option<String>, String)],
        schema: &Schema,
        rows: &[Row],
    ) -> Result<Vec<Vec<Value>>> {
        use std::collections::BTreeMap;
        // Group rows by the group-by key values.
        let group_exprs: Vec<Expr> = stmt
            .group_by
            .iter()
            .map(|e| rewrite_columns(e, names))
            .collect::<Result<_>>()?;
        let mut groups: BTreeMap<Vec<Value>, Vec<&Row>> = BTreeMap::new();
        for row in rows {
            let key: Vec<Value> = group_exprs
                .iter()
                .map(|e| eval_expr(schema, row, e).unwrap_or(Value::Null))
                .collect();
            groups.entry(key).or_default().push(row);
        }
        if groups.is_empty() && stmt.group_by.is_empty() {
            groups.insert(vec![], vec![]);
        }

        let mut out = Vec::new();
        for (key, members) in groups {
            let mut row_out = Vec::new();
            for item in &stmt.projection {
                match item {
                    SelectItem::Expr { expr, .. } => {
                        let v = self.eval_projection_with_aggregates(
                            expr,
                            names,
                            schema,
                            &key,
                            &group_exprs,
                            &members,
                        )?;
                        row_out.push(v);
                    }
                    _ => return Err(Error::llm(
                        "wildcard projections are not supported with GROUP BY in one-shot prompts",
                    )),
                }
            }
            out.push(row_out);
        }
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_projection_with_aggregates(
        &self,
        expr: &Expr,
        names: &[(Option<String>, String)],
        schema: &Schema,
        group_key: &[Value],
        group_exprs: &[Expr],
        members: &[&Row],
    ) -> Result<Value> {
        match expr {
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => {
                let mut values: Vec<Value> = Vec::new();
                for row in members {
                    match arg {
                        None => values.push(Value::Int(1)),
                        Some(a) => {
                            let e = rewrite_columns(a, names)?;
                            let v = eval_expr(schema, row, &e).unwrap_or(Value::Null);
                            if !v.is_null() {
                                values.push(v);
                            }
                        }
                    }
                }
                if *distinct {
                    let mut seen = Vec::new();
                    values.retain(|v| {
                        if seen.iter().any(|s: &Value| s.semantic_eq(v)) {
                            false
                        } else {
                            seen.push(v.clone());
                            true
                        }
                    });
                }
                Ok(compute_aggregate(*func, &values))
            }
            // A projection expression that is one of the group-by expressions
            // evaluates to the group key.
            other => {
                let rewritten = rewrite_columns(other, names)?;
                for (i, g) in group_exprs.iter().enumerate() {
                    if *g == rewritten {
                        return Ok(group_key[i].clone());
                    }
                }
                match members.first() {
                    Some(row) => Ok(eval_expr(schema, row, &rewritten).unwrap_or(Value::Null)),
                    None => Ok(Value::Null),
                }
            }
        }
    }

    /// Render the completion text: join lines, apply per-line format noise.
    fn render(&self, prompt: &str, lines: Vec<String>) -> String {
        let mut out_lines = Vec::with_capacity(lines.len());
        for (i, line) in lines.into_iter().enumerate() {
            if self.noise.mangles_line(prompt, i) {
                out_lines.push(self.noise.mangle_line(&line));
            } else {
                out_lines.push(line);
            }
        }
        if out_lines.is_empty() {
            // A model never returns a truly empty completion.
            "(no results)".to_string()
        } else {
            out_lines.join("\n")
        }
    }
}

/// Compute an aggregate over already-collected values.
pub fn compute_aggregate(func: AggregateFunc, values: &[Value]) -> Value {
    match func {
        AggregateFunc::Count => Value::Int(values.len() as i64),
        AggregateFunc::Sum => {
            if values.is_empty() {
                return Value::Null;
            }
            let all_int = values.iter().all(|v| matches!(v, Value::Int(_)));
            if all_int {
                Value::Int(values.iter().filter_map(|v| v.as_int()).sum())
            } else {
                Value::Float(values.iter().filter_map(|v| v.as_f64()).sum())
            }
        }
        AggregateFunc::Avg => {
            if values.is_empty() {
                return Value::Null;
            }
            let sum: f64 = values.iter().filter_map(|v| v.as_f64()).sum();
            Value::Float(sum / values.len() as f64)
        }
        AggregateFunc::Min => values
            .iter()
            .min_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null),
        AggregateFunc::Max => values
            .iter()
            .max_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null),
    }
}

/// Build a throwaway schema whose column names are `__c0`, `__c1`, ... so the
/// simulator's evaluator can run over joined rows.
fn flat_schema(names: &[(Option<String>, String)]) -> Schema {
    let columns = (0..names.len().max(1))
        .map(|i| llmsql_types::Column::new(format!("__c{i}"), DataType::Text))
        .collect();
    Schema {
        name: "__joined".to_string(),
        columns,
        virtual_table: false,
        description: None,
    }
}

/// Rewrite column references in an expression to the positional `__cN` names
/// of [`flat_schema`], resolving qualifiers against `names`.
fn rewrite_columns(expr: &Expr, names: &[(Option<String>, String)]) -> Result<Expr> {
    let resolve = |qualifier: &Option<String>, name: &str| -> Result<usize> {
        let name_l = name.to_ascii_lowercase();
        let qual_l = qualifier.as_ref().map(|q| q.to_ascii_lowercase());
        let mut matches = names.iter().enumerate().filter(|(_, (q, n))| {
            *n == name_l
                && match &qual_l {
                    Some(want) => q.as_deref() == Some(want.as_str()),
                    None => true,
                }
        });
        match (matches.next(), matches.next()) {
            (Some((i, _)), None) => Ok(i),
            (Some((i, _)), Some(_)) => Ok(i), // ambiguous: the model just picks the first
            (None, _) => Err(Error::llm(format!("unknown column '{name}'"))),
        }
    };
    rewrite(expr, &resolve)
}

fn rewrite(expr: &Expr, resolve: &impl Fn(&Option<String>, &str) -> Result<usize>) -> Result<Expr> {
    Ok(match expr {
        Expr::Column { qualifier, name } => Expr::Column {
            qualifier: None,
            name: format!("__c{}", resolve(qualifier, name)?),
        },
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rewrite(left, resolve)?),
            op: *op,
            right: Box::new(rewrite(right, resolve)?),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite(expr, resolve)?),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite(expr, resolve)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rewrite(expr, resolve)?),
            list: list
                .iter()
                .map(|e| rewrite(e, resolve))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(rewrite(expr, resolve)?),
            low: Box::new(rewrite(low, resolve)?),
            high: Box::new(rewrite(high, resolve)?),
            negated: *negated,
        },
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => Expr::Aggregate {
            func: *func,
            arg: match arg {
                Some(a) => Some(Box::new(rewrite(a, resolve)?)),
                None => None,
            },
            distinct: *distinct,
        },
        Expr::Cast { expr, data_type } => Expr::Cast {
            expr: Box::new(rewrite(expr, resolve)?),
            data_type: *data_type,
        },
        Expr::Case {
            branches,
            else_expr,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| Ok((rewrite(c, resolve)?, rewrite(v, resolve)?)))
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(rewrite(e, resolve)?)),
                None => None,
            },
        },
    })
}

impl LanguageModel for SimLlm {
    fn name(&self) -> String {
        format!(
            "sim-llm(recall={:.2},halluc={:.2},seed={})",
            self.noise.fidelity.recall, self.noise.fidelity.hallucination, self.noise.seed
        )
    }

    /// Every knob that changes completion text is part of the identity:
    /// clients sharing a prompt cache must not mix configurations that answer
    /// the same prompt differently.
    fn fingerprint(&self) -> String {
        let f = &self.noise.fidelity;
        format!(
            "sim-llm(r={},h={},v={},f={},e={},seed={},cap={})",
            f.recall,
            f.hallucination,
            f.value_noise,
            f.format_noise,
            f.enumeration_coverage,
            self.noise.seed,
            self.max_rows_per_completion,
        )
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse> {
        if self.simulated_latency_ms > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(
                self.simulated_latency_ms / 1000.0,
            ));
        }
        self.complete_now(request)
    }

    /// Non-blocking submission: the completion is pure compute, so it is
    /// produced immediately and the simulated round trip becomes a timer on
    /// the handle — one event loop can then hold many in-flight simulated
    /// requests on a single OS thread.
    fn submit(&self, request: &CompletionRequest) -> crate::backend::CallHandle {
        let result = self.complete_now(request);
        if self.simulated_latency_ms > 0.0 {
            let ready_at = std::time::Instant::now()
                + std::time::Duration::from_secs_f64(self.simulated_latency_ms / 1000.0);
            crate::backend::CallHandle::timed(result, ready_at)
        } else {
            crate::backend::CallHandle::ready(result)
        }
    }

    /// Async dispatch pays off exactly when requests have latency to overlap;
    /// a zero-latency simulator keeps the thread-pool path (same results,
    /// no event-loop overhead).
    fn supports_async_submit(&self) -> bool {
        self.simulated_latency_ms > 0.0
    }

    fn cost_model(&self) -> LlmCostModel {
        self.cost_model
    }

    /// The simulator's observed row count for `table`: known entities minus
    /// forgotten ones plus fabricated ones — exactly the number of lines an
    /// unfiltered enumeration of the relation would produce, and a pure
    /// function of `(seed, table)`, so the hint is stable across calls.
    fn relation_cardinality(&self, table: &str) -> Option<u64> {
        self.observed_table(table)
            .ok()
            .map(|(_, rows)| rows.len() as u64)
    }
}

impl SimLlm {
    /// The deterministic completion for `request`, without the simulated
    /// network delay (the blocking `complete` sleeps then delegates here;
    /// the async `submit` computes here and represents the delay as a
    /// timer).
    fn complete_now(&self, request: &CompletionRequest) -> Result<CompletionResponse> {
        // Packed composite (tuple batching): answer each member task
        // independently and join the answers with the same separator. Each
        // member goes through the full single-task path — including its own
        // noise draws, keyed on the member prompt — so a batched answer is
        // byte-identical to the unbatched answers it replaces, at any batch
        // size. The per-member token budget is the caller's budget: the
        // packing contract gives every member the full page allowance.
        if crate::batch::is_packed(&request.prompt) {
            let members = crate::batch::split_prompt(&request.prompt);
            let mut texts = Vec::with_capacity(members.len());
            let mut completion_tokens = 0;
            let mut cost_usd = 0.0;
            for member in &members {
                let response = self.complete_now(&CompletionRequest {
                    prompt: (*member).to_string(),
                    max_tokens: request.max_tokens,
                    temperature: request.temperature,
                })?;
                completion_tokens += response.completion_tokens;
                cost_usd += response.cost_usd;
                texts.push(response.text);
            }
            let prompt_tokens = count_tokens(&request.prompt);
            return Ok(CompletionResponse {
                text: texts.join(&format!("\n{}\n", crate::batch::BATCH_SEPARATOR)),
                prompt_tokens,
                completion_tokens,
                // One request, one round trip: the composite pays a single
                // simulated latency, which is the whole point of batching.
                latency_ms: self.cost_model.request_latency_ms(completion_tokens),
                cost_usd,
            });
        }
        let task = parse_task(&request.prompt)?;
        let lines = match &task {
            TaskSpec::Enumerate {
                table,
                filter,
                limit,
                offset,
            } => self.handle_enumerate(table, filter.as_deref(), *limit, *offset)?,
            TaskSpec::RowBatch {
                table,
                columns,
                filter,
                limit,
                offset,
            } => self.handle_row_batch(table, columns, filter.as_deref(), *limit, *offset)?,
            TaskSpec::Lookup {
                table,
                key,
                columns,
            } => self.handle_lookup(table, key, columns)?,
            TaskSpec::FilterCheck {
                table,
                key,
                condition,
            } => self.handle_filter_check(table, key, condition)?,
            TaskSpec::FullQuery { sql, .. } => self.handle_full_query(sql)?,
        };
        let text = self.render(&request.prompt, lines);

        let prompt_tokens = count_tokens(&request.prompt);
        let mut completion_tokens = count_tokens(&text);
        // Honour the caller's completion budget: truncate whole lines.
        let text = if completion_tokens > request.max_tokens {
            let mut kept = Vec::new();
            let mut used = 0;
            for line in text.lines() {
                let t = count_tokens(line) + 1;
                if used + t > request.max_tokens {
                    break;
                }
                used += t;
                kept.push(line);
            }
            completion_tokens = used;
            kept.join("\n")
        } else {
            text
        };

        Ok(CompletionResponse {
            cost_usd: self
                .cost_model
                .request_cost_usd(prompt_tokens, completion_tokens),
            latency_ms: self.cost_model.request_latency_ms(completion_tokens),
            text,
            prompt_tokens,
            completion_tokens,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_pipe_rows, parse_value_lines, parse_yes_no, YesNoAnswer};
    use llmsql_types::Column;

    fn world() -> Arc<KnowledgeBase> {
        let schema = Schema::virtual_table(
            "countries",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("region", DataType::Text),
                Column::new("capital", DataType::Text),
                Column::new("population", DataType::Int),
            ],
        );
        let data: [(&str, &str, &str, i64); 6] = [
            ("France", "Europe", "Paris", 68_000_000),
            ("Germany", "Europe", "Berlin", 84_000_000),
            ("Japan", "Asia", "Tokyo", 125_000_000),
            ("Peru", "Americas", "Lima", 34_000_000),
            ("Kenya", "Africa", "Nairobi", 54_000_000),
            ("Iceland", "Europe", "Reykjavik", 380_000),
        ];
        let rows = data
            .iter()
            .map(|(n, r, c, p)| {
                Row::new(vec![(*n).into(), (*r).into(), (*c).into(), Value::Int(*p)])
            })
            .collect();

        let city_schema = Schema::virtual_table(
            "cities",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("country", DataType::Text),
                Column::new("population", DataType::Int),
            ],
        );
        let cities = vec![
            Row::new(vec!["Paris".into(), "France".into(), Value::Int(2_148_000)]),
            Row::new(vec!["Lyon".into(), "France".into(), Value::Int(513_000)]),
            Row::new(vec![
                "Berlin".into(),
                "Germany".into(),
                Value::Int(3_645_000),
            ]),
            Row::new(vec!["Tokyo".into(), "Japan".into(), Value::Int(13_960_000)]),
        ];

        let mut kb = KnowledgeBase::new();
        kb.add_table(schema, rows);
        kb.add_table(city_schema, cities);
        kb.into_shared()
    }

    fn perfect() -> SimLlm {
        SimLlm::new(world(), LlmFidelity::perfect(), 1)
    }

    fn complete(sim: &SimLlm, spec: &TaskSpec) -> String {
        let schema = spec
            .table()
            .and_then(|t| sim.knowledge().table(t).ok())
            .map(|t| t.schema.clone());
        let prompt = spec.to_prompt(schema.as_ref());
        sim.complete(&CompletionRequest::new(prompt)).unwrap().text
    }

    #[test]
    fn enumerate_perfect_lists_everything() {
        let sim = perfect();
        let text = complete(
            &sim,
            &TaskSpec::Enumerate {
                table: "countries".into(),
                filter: None,
                limit: 100,
                offset: 0,
            },
        );
        let parsed = parse_value_lines(&text, DataType::Text);
        assert_eq!(parsed.rows.len(), 6);
    }

    #[test]
    fn packed_prompts_answer_each_member_byte_identically() {
        // Tuple batching contract: a composite answer, split back per
        // member, is byte-identical to answering each member alone — noise
        // draws are keyed on the member prompt, so even a noisy simulator
        // agrees at any batch size.
        let sim = SimLlm::new(world(), LlmFidelity::medium(), 9);
        let prompts: Vec<String> = ["France", "Japan", "Iceland"]
            .iter()
            .map(|key| {
                TaskSpec::Lookup {
                    table: "countries".into(),
                    key: (*key).to_string(),
                    columns: vec!["capital".into(), "population".into()],
                }
                .to_prompt(None)
            })
            .collect();
        let packed = crate::batch::pack_prompts(&prompts);
        let composite = sim.complete(&CompletionRequest::new(packed)).unwrap();
        let parts = crate::batch::split_response(&composite, prompts.len());
        assert_eq!(parts.len(), prompts.len());
        for (prompt, part) in prompts.iter().zip(&parts) {
            let single = sim
                .complete(&CompletionRequest::new(prompt.as_str()))
                .unwrap();
            assert_eq!(single.text, part.text);
        }
    }

    #[test]
    fn enumerate_with_filter_and_pagination() {
        let sim = perfect();
        let text = complete(
            &sim,
            &TaskSpec::Enumerate {
                table: "countries".into(),
                filter: Some("region = 'Europe'".into()),
                limit: 2,
                offset: 1,
            },
        );
        let parsed = parse_value_lines(&text, DataType::Text);
        // Europe has France, Germany, Iceland; skip 1, take 2
        assert_eq!(parsed.rows.len(), 2);
    }

    #[test]
    fn row_batch_returns_requested_columns() {
        let sim = perfect();
        let text = complete(
            &sim,
            &TaskSpec::RowBatch {
                table: "countries".into(),
                columns: vec!["name".into(), "population".into()],
                filter: Some("population > 60000000".into()),
                limit: 50,
                offset: 0,
            },
        );
        let parsed = parse_pipe_rows(&text, &[DataType::Text, DataType::Int]);
        assert_eq!(parsed.rows.len(), 3); // France, Germany, Japan
        for row in &parsed.rows {
            assert!(row.get(1).as_int().unwrap() > 60_000_000);
        }
    }

    #[test]
    fn lookup_returns_attributes() {
        let sim = perfect();
        let text = complete(
            &sim,
            &TaskSpec::Lookup {
                table: "countries".into(),
                key: "Japan".into(),
                columns: vec!["capital".into(), "population".into()],
            },
        );
        let parsed = parse_pipe_rows(&text, &[DataType::Text, DataType::Int]);
        assert_eq!(parsed.rows[0].get(0), &Value::Text("Tokyo".into()));
        assert_eq!(parsed.rows[0].get(1), &Value::Int(125_000_000));
    }

    #[test]
    fn lookup_unknown_entity_hedges() {
        let sim = SimLlm::new(world(), LlmFidelity::perfect(), 1);
        let text = complete(
            &sim,
            &TaskSpec::Lookup {
                table: "countries".into(),
                key: "Atlantis".into(),
                columns: vec!["capital".into()],
            },
        );
        assert!(text.to_lowercase().contains("unknown"));
    }

    #[test]
    fn filter_check_yes_no() {
        let sim = perfect();
        let yes = complete(
            &sim,
            &TaskSpec::FilterCheck {
                table: "countries".into(),
                key: "Japan".into(),
                condition: "population > 100000000".into(),
            },
        );
        assert_eq!(parse_yes_no(&yes), YesNoAnswer::Yes);
        let no = complete(
            &sim,
            &TaskSpec::FilterCheck {
                table: "countries".into(),
                key: "Iceland".into(),
                condition: "population > 100000000".into(),
            },
        );
        assert_eq!(parse_yes_no(&no), YesNoAnswer::No);
    }

    #[test]
    fn full_query_single_table() {
        let sim = perfect();
        let text = complete(
            &sim,
            &TaskSpec::FullQuery {
                sql: "SELECT name, capital FROM countries WHERE region = 'Europe' ORDER BY name LIMIT 10"
                    .into(),
                columns: vec!["name".into(), "capital".into()],
            },
        );
        let parsed = parse_pipe_rows(&text, &[DataType::Text, DataType::Text]);
        assert_eq!(parsed.rows.len(), 3);
        assert_eq!(parsed.rows[0].get(0), &Value::Text("France".into()));
    }

    #[test]
    fn full_query_join() {
        let sim = perfect();
        let text = complete(
            &sim,
            &TaskSpec::FullQuery {
                sql: "SELECT ci.name, c.region FROM cities ci JOIN countries c ON ci.country = c.name"
                    .into(),
                columns: vec!["name".into(), "region".into()],
            },
        );
        let parsed = parse_pipe_rows(&text, &[DataType::Text, DataType::Text]);
        assert_eq!(parsed.rows.len(), 4);
    }

    #[test]
    fn full_query_aggregate() {
        let sim = perfect();
        let text = complete(
            &sim,
            &TaskSpec::FullQuery {
                sql: "SELECT region, COUNT(*) FROM countries GROUP BY region".into(),
                columns: vec!["region".into(), "count(*)".into()],
            },
        );
        let parsed = parse_pipe_rows(&text, &[DataType::Text, DataType::Int]);
        assert_eq!(parsed.rows.len(), 4);
        let europe = parsed
            .rows
            .iter()
            .find(|r| r.get(0) == &Value::Text("Europe".into()))
            .unwrap();
        assert_eq!(europe.get(1), &Value::Int(3));
    }

    #[test]
    fn full_query_global_aggregate() {
        let sim = perfect();
        let text = complete(
            &sim,
            &TaskSpec::FullQuery {
                sql: "SELECT COUNT(*), SUM(population), MAX(population) FROM countries".into(),
                columns: vec![],
            },
        );
        let parsed = parse_pipe_rows(&text, &[DataType::Int, DataType::Int, DataType::Int]);
        assert_eq!(parsed.rows[0].get(0), &Value::Int(6));
        assert_eq!(parsed.rows[0].get(2), &Value::Int(125_000_000));
    }

    #[test]
    fn weak_model_misses_and_fabricates() {
        let sim = SimLlm::new(world(), LlmFidelity::weak(), 3);
        let text = complete(
            &sim,
            &TaskSpec::RowBatch {
                table: "countries".into(),
                columns: vec!["name".into(), "capital".into(), "population".into()],
                filter: None,
                limit: 100,
                offset: 0,
            },
        );
        let parsed = parse_pipe_rows(&text, &[DataType::Text, DataType::Text, DataType::Int]);
        // With weak fidelity the result differs from the truth: either some
        // of the 6 entities are missing, or values are wrong/fabricated.
        let names: Vec<String> = parsed
            .rows
            .iter()
            .map(|r| r.get(0).to_display_string())
            .collect();
        let truth = ["France", "Germany", "Japan", "Peru", "Kenya", "Iceland"];
        let exact = names.len() == 6 && truth.iter().all(|t| names.contains(&t.to_string()));
        let capitals_ok = parsed.rows.iter().all(|r| {
            matches!(r.get(1), Value::Text(s) if ["Paris","Berlin","Tokyo","Lima","Nairobi","Reykjavik"].contains(&s.as_str()))
        });
        assert!(!(exact && capitals_ok), "weak model should not be perfect");
    }

    #[test]
    fn simulator_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimLlm>();
    }

    #[test]
    fn concurrent_calls_match_sequential_calls() {
        // Same (seed, prompt) must produce the same completion no matter how
        // calls interleave across threads — the property parallel scans rely
        // on for determinism.
        let sim = SimLlm::new(world(), LlmFidelity::medium(), 9);
        let specs: Vec<TaskSpec> = (0..8)
            .map(|i| TaskSpec::RowBatch {
                table: "countries".into(),
                columns: vec!["name".into(), "population".into()],
                filter: None,
                limit: 2,
                offset: i,
            })
            .collect();
        let sequential: Vec<String> = specs.iter().map(|s| complete(&sim, s)).collect();
        let concurrent: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .map(|s| scope.spawn(|| complete(&sim, s)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(sequential, concurrent);
    }

    #[test]
    fn simulated_latency_delays_completion() {
        let sim = SimLlm::new(world(), LlmFidelity::perfect(), 1).with_simulated_latency_ms(20.0);
        let spec = TaskSpec::Enumerate {
            table: "countries".into(),
            filter: None,
            limit: 5,
            offset: 0,
        };
        let start = std::time::Instant::now();
        complete(&sim, &spec);
        assert!(start.elapsed().as_millis() >= 15);
    }

    #[test]
    fn deterministic_given_seed() {
        let sim1 = SimLlm::new(world(), LlmFidelity::medium(), 9);
        let sim2 = SimLlm::new(world(), LlmFidelity::medium(), 9);
        let spec = TaskSpec::RowBatch {
            table: "countries".into(),
            columns: vec!["name".into(), "population".into()],
            filter: None,
            limit: 100,
            offset: 0,
        };
        assert_eq!(complete(&sim1, &spec), complete(&sim2, &spec));
    }

    #[test]
    fn max_tokens_truncates_whole_lines() {
        let sim = perfect();
        let spec = TaskSpec::RowBatch {
            table: "countries".into(),
            columns: vec![
                "name".into(),
                "region".into(),
                "capital".into(),
                "population".into(),
            ],
            filter: None,
            limit: 100,
            offset: 0,
        };
        let schema = sim.knowledge().table("countries").unwrap().schema.clone();
        let prompt = spec.to_prompt(Some(&schema));
        let resp = sim
            .complete(&CompletionRequest::new(prompt).with_max_tokens(20))
            .unwrap();
        assert!(resp.completion_tokens <= 20);
        assert!(resp.text.lines().count() < 6);
    }

    #[test]
    fn unknown_table_is_an_error() {
        let sim = perfect();
        let spec = TaskSpec::Enumerate {
            table: "starships".into(),
            filter: None,
            limit: 10,
            offset: 0,
        };
        let prompt = spec.to_prompt(None);
        assert!(sim.complete(&CompletionRequest::new(prompt)).is_err());
    }

    #[test]
    fn non_task_prompt_is_an_error() {
        let sim = perfect();
        assert!(sim
            .complete(&CompletionRequest::new("What is the capital of France?"))
            .is_err());
    }

    #[test]
    fn response_accounting_present() {
        let sim = perfect();
        let spec = TaskSpec::Enumerate {
            table: "countries".into(),
            filter: None,
            limit: 10,
            offset: 0,
        };
        let resp = sim
            .complete(&CompletionRequest::new(spec.to_prompt(None)))
            .unwrap();
        assert!(resp.prompt_tokens > 10);
        assert!(resp.completion_tokens > 0);
        assert!(resp.cost_usd > 0.0);
        assert!(resp.latency_ms > 0.0);
        assert!(sim.name().starts_with("sim-llm"));
    }

    #[test]
    fn aggregate_helper() {
        let vals = vec![Value::Int(1), Value::Int(5), Value::Int(3)];
        assert_eq!(
            compute_aggregate(AggregateFunc::Count, &vals),
            Value::Int(3)
        );
        assert_eq!(compute_aggregate(AggregateFunc::Sum, &vals), Value::Int(9));
        assert_eq!(
            compute_aggregate(AggregateFunc::Avg, &vals),
            Value::Float(3.0)
        );
        assert_eq!(compute_aggregate(AggregateFunc::Min, &vals), Value::Int(1));
        assert_eq!(compute_aggregate(AggregateFunc::Max, &vals), Value::Int(5));
        assert_eq!(compute_aggregate(AggregateFunc::Sum, &[]), Value::Null);
        assert_eq!(compute_aggregate(AggregateFunc::Count, &[]), Value::Int(0));
    }
}
