//! A small expression evaluator the *simulator* uses to interpret filter
//! predicates that the engine pushed into prompts.
//!
//! This is intentionally separate from the engine's own evaluator
//! (`llmsql-exec`): it models "the language model reading a condition in the
//! prompt and applying it to facts it recalls". It supports the subset of SQL
//! expressions the prompt builder ever pushes down: comparisons, boolean
//! connectives, arithmetic, LIKE, IN, BETWEEN, IS NULL over the relation's
//! columns and literals.

use llmsql_sql::ast::{BinaryOp, Expr, UnaryOp};
use llmsql_sql::parse_expression;
use llmsql_types::{Error, Result, Row, Schema, Value};

/// Evaluate a predicate (given as SQL text) against a row of the relation.
///
/// Returns `Ok(None)` when the predicate value is SQL UNKNOWN (three-valued
/// logic) — the caller usually treats that as "does not satisfy".
pub fn eval_predicate_text(schema: &Schema, row: &Row, predicate: &str) -> Result<Option<bool>> {
    let expr = parse_expression(predicate)?;
    let v = eval_expr(schema, row, &expr)?;
    Ok(match v {
        Value::Null => None,
        Value::Bool(b) => Some(b),
        other => Some(truthy(&other)),
    })
}

fn truthy(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        Value::Text(s) => !s.is_empty(),
        Value::Null => false,
    }
}

/// Evaluate an expression against a row of the relation.
pub fn eval_expr(schema: &Schema, row: &Row, expr: &Expr) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { name, .. } => {
            let idx = schema.index_of(name).ok_or_else(|| {
                Error::llm(format!(
                    "predicate references unknown column '{name}' of '{}'",
                    schema.name
                ))
            })?;
            Ok(row.get(idx).clone())
        }
        Expr::Unary { op, expr } => {
            let v = eval_expr(schema, row, expr)?;
            match op {
                UnaryOp::Not => Ok(match v {
                    Value::Null => Value::Null,
                    other => Value::Bool(!truthy(&other)),
                }),
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(Error::llm(format!("cannot negate {}", other.type_name()))),
                },
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(schema, row, expr)?;
            let is_null = v.is_null();
            Ok(Value::Bool(if *negated { !is_null } else { is_null }))
        }
        Expr::Binary { left, op, right } => {
            let l = eval_expr(schema, row, left)?;
            let r = eval_expr(schema, row, right)?;
            eval_binary(&l, *op, &r)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_expr(schema, row, expr)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in list {
                let iv = eval_expr(schema, row, item)?;
                if v.semantic_eq(&iv) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(if *negated { !found } else { found }))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_expr(schema, row, expr)?;
            let lo = eval_expr(schema, row, low)?;
            let hi = eval_expr(schema, row, high)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Null);
            }
            let within = v.total_cmp(&lo) != std::cmp::Ordering::Less
                && v.total_cmp(&hi) != std::cmp::Ordering::Greater;
            Ok(Value::Bool(if *negated { !within } else { within }))
        }
        Expr::Cast { expr, data_type } => {
            let v = eval_expr(schema, row, expr)?;
            v.cast(*data_type).map_err(|e| Error::llm(e.message))
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (cond, val) in branches {
                let c = eval_expr(schema, row, cond)?;
                if truthy(&c) {
                    return eval_expr(schema, row, val);
                }
            }
            match else_expr {
                Some(e) => eval_expr(schema, row, e),
                None => Ok(Value::Null),
            }
        }
        Expr::Aggregate { .. } => Err(Error::llm(
            "aggregate expressions cannot appear in pushed-down predicates",
        )),
    }
}

fn eval_binary(l: &Value, op: BinaryOp, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    // Logical connectives use SQL three-valued logic.
    if matches!(op, And | Or) {
        let lb = if l.is_null() { None } else { Some(truthy(l)) };
        let rb = if r.is_null() { None } else { Some(truthy(r)) };
        return Ok(match (op, lb, rb) {
            (And, Some(false), _) | (And, _, Some(false)) => Value::Bool(false),
            (And, Some(true), Some(true)) => Value::Bool(true),
            (Or, Some(true), _) | (Or, _, Some(true)) => Value::Bool(true),
            (Or, Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        });
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        Plus | Minus | Multiply | Divide | Modulo => {
            arith(l, op, r).ok_or_else(|| Error::llm("invalid arithmetic operands"))
        }
        Eq => Ok(Value::Bool(l.semantic_eq(r))),
        NotEq => Ok(Value::Bool(!l.semantic_eq(r))),
        Lt => Ok(Value::Bool(
            num_or_text_cmp(l, r) == std::cmp::Ordering::Less,
        )),
        LtEq => Ok(Value::Bool(
            num_or_text_cmp(l, r) != std::cmp::Ordering::Greater,
        )),
        Gt => Ok(Value::Bool(
            num_or_text_cmp(l, r) == std::cmp::Ordering::Greater,
        )),
        GtEq => Ok(Value::Bool(
            num_or_text_cmp(l, r) != std::cmp::Ordering::Less,
        )),
        Like => Ok(Value::Bool(like_match(
            &l.to_display_string(),
            &r.to_display_string(),
        ))),
        Concat => Ok(Value::Text(format!(
            "{}{}",
            l.to_display_string(),
            r.to_display_string()
        ))),
        And | Or => unreachable!("handled above"),
    }
}

fn num_or_text_cmp(l: &Value, r: &Value) -> std::cmp::Ordering {
    l.total_cmp(r)
}

fn arith(l: &Value, op: BinaryOp, r: &Value) -> Option<Value> {
    use BinaryOp::*;
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Some(match op {
            Plus => Value::Int(a.wrapping_add(*b)),
            Minus => Value::Int(a.wrapping_sub(*b)),
            Multiply => Value::Int(a.wrapping_mul(*b)),
            Divide => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a / b)
                }
            }
            Modulo => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a % b)
                }
            }
            _ => return None,
        }),
        _ => {
            let a = l.as_f64()?;
            let b = r.as_f64()?;
            Some(match op {
                Plus => Value::Float(a + b),
                Minus => Value::Float(a - b),
                Multiply => Value::Float(a * b),
                Divide => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                Modulo => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a % b)
                    }
                }
                _ => return None,
            })
        }
    }
}

/// SQL LIKE matching with `%` (any run) and `_` (single char), case-insensitive
/// (mirrors how an LLM treats string questions).
///
/// Iterative two-pointer algorithm with `%`-backtracking: on a mismatch the
/// scan resumes one text position past where the most recent `%` started
/// matching, so the worst case is O(|text| × |pattern|) — never the
/// exponential blowup (and stack overflow) of naive recursion on adversarial
/// patterns like `%a%a%a%b`.
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let mut ti = 0; // cursor into text
    let mut pi = 0; // cursor into pattern
                    // Backtracking state: the pattern index just past the last `%`, and the
                    // text index that `%` is currently assumed to have consumed up to.
    let mut star_pi = usize::MAX;
    let mut star_ti = 0;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi].eq_ignore_ascii_case(&t[ti])) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_pi = pi + 1;
            star_ti = ti;
            pi = star_pi;
        } else if star_pi != usize::MAX {
            // Mismatch after a `%`: widen that `%` by one character and
            // retry the remainder of the pattern from there.
            star_ti += 1;
            ti = star_ti;
            pi = star_pi;
        } else {
            return false;
        }
    }
    // Text exhausted: the remaining pattern must be all `%`.
    p[pi..].iter().all(|&c| c == '%')
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_types::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(
            "countries",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("region", DataType::Text),
                Column::new("population", DataType::Int),
                Column::new("area", DataType::Float),
            ],
        )
    }

    fn row() -> Row {
        Row::new(vec![
            "France".into(),
            "Europe".into(),
            Value::Int(68_000_000),
            Value::Float(643_801.0),
        ])
    }

    fn check(pred: &str) -> Option<bool> {
        eval_predicate_text(&schema(), &row(), pred).unwrap()
    }

    #[test]
    fn comparisons() {
        assert_eq!(check("population > 50000000"), Some(true));
        assert_eq!(check("population < 50000000"), Some(false));
        assert_eq!(check("name = 'France'"), Some(true));
        assert_eq!(check("name <> 'France'"), Some(false));
        assert_eq!(check("area >= 643801.0"), Some(true));
        assert_eq!(check("population <= 68000000"), Some(true));
    }

    #[test]
    fn boolean_logic() {
        assert_eq!(check("population > 1 AND region = 'Europe'"), Some(true));
        assert_eq!(check("population > 1 AND region = 'Asia'"), Some(false));
        assert_eq!(check("region = 'Asia' OR area > 1000"), Some(true));
        assert_eq!(check("NOT region = 'Asia'"), Some(true));
    }

    #[test]
    fn null_semantics() {
        let schema = schema();
        let row = Row::new(vec!["X".into(), Value::Null, Value::Null, Value::Null]);
        assert_eq!(
            eval_predicate_text(&schema, &row, "population > 10").unwrap(),
            None
        );
        assert_eq!(
            eval_predicate_text(&schema, &row, "region IS NULL").unwrap(),
            Some(true)
        );
        assert_eq!(
            eval_predicate_text(&schema, &row, "region IS NOT NULL").unwrap(),
            Some(false)
        );
        // false AND unknown = false
        assert_eq!(
            eval_predicate_text(&schema, &row, "name = 'Y' AND population > 10").unwrap(),
            Some(false)
        );
        // true OR unknown = true
        assert_eq!(
            eval_predicate_text(&schema, &row, "name = 'X' OR population > 10").unwrap(),
            Some(true)
        );
    }

    #[test]
    fn in_between_like() {
        assert_eq!(check("region IN ('Europe', 'Asia')"), Some(true));
        assert_eq!(check("region NOT IN ('Europe')"), Some(false));
        assert_eq!(
            check("population BETWEEN 1000000 AND 100000000"),
            Some(true)
        );
        assert_eq!(check("population NOT BETWEEN 1 AND 10"), Some(true));
        assert_eq!(check("name LIKE 'Fra%'"), Some(true));
        assert_eq!(check("name LIKE '%ance'"), Some(true));
        assert_eq!(check("name LIKE 'F_ance'"), Some(true));
        assert_eq!(check("name LIKE 'Ger%'"), Some(false));
    }

    #[test]
    fn arithmetic_and_case() {
        assert_eq!(check("population / 1000000 >= 68"), Some(true));
        assert_eq!(check("population % 2 = 0"), Some(true));
        assert_eq!(check("population + 1 > population"), Some(true));
        assert_eq!(
            check("CASE WHEN region = 'Europe' THEN 1 ELSE 0 END = 1"),
            Some(true)
        );
        assert_eq!(check("CAST(area AS INTEGER) = 643801"), Some(true));
        // division by zero yields NULL -> unknown
        assert_eq!(check("population / 0 > 1"), None);
    }

    #[test]
    fn unknown_column_errors() {
        assert!(eval_predicate_text(&schema(), &row(), "gdp > 1").is_err());
        assert!(eval_predicate_text(&schema(), &row(), "SUM(population) > 1").is_err());
    }

    #[test]
    fn like_edge_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%"));
        assert!(like_match("abc", "a%c"));
        assert!(like_match("ABC", "abc"));
        assert!(!like_match("abc", "a%d"));
        assert!(like_match("a|b", "a|b"));
        assert!(like_match("abc", "%%%"));
        assert!(like_match("abc", "%_c"));
        assert!(like_match("abc", "_b_"));
        assert!(!like_match("abc", "abcd"));
        assert!(!like_match("abcd", "abc"));
        assert!(like_match("ab%cd", "ab%cd"));
    }

    #[test]
    fn like_adversarial_pattern_is_fast() {
        // Regression: the old recursive matcher backtracked exponentially on
        // repeated `%x` groups over a long non-matching text (and could
        // overflow the stack). The iterative matcher is O(|text|·|pattern|).
        let text: String = "a".repeat(5_000);
        let pattern = "%a%a%a%a%a%a%a%a%a%a%b";
        let start = std::time::Instant::now();
        assert!(!like_match(&text, pattern));
        assert!(like_match(&(text.clone() + "b"), pattern));
        let elapsed = start.elapsed();
        assert!(
            elapsed < std::time::Duration::from_secs(1),
            "adversarial LIKE took {elapsed:?}"
        );
    }

    /// Naive exponential reference matcher: `%` tries every split. Only safe
    /// on the short inputs the property test generates.
    fn naive_like(t: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some((&'%', rest)) => (0..=t.len()).any(|k| naive_like(&t[k..], rest)),
            Some((&'_', rest)) => !t.is_empty() && naive_like(&t[1..], rest),
            Some((pc, rest)) => match t.split_first() {
                Some((tc, trest)) => tc.eq_ignore_ascii_case(pc) && naive_like(trest, rest),
                None => false,
            },
        }
    }

    proptest::proptest! {
        /// The iterative matcher agrees with the naive reference on random
        /// pattern/text pairs over a small alphabet (dense in collisions, so
        /// `%`-backtracking paths actually get exercised).
        #[test]
        fn like_matches_naive_reference(
            text in "[abAB]{0,10}",
            pattern in "[ab%_]{0,8}",
        ) {
            let t: Vec<char> = text.chars().collect();
            let p: Vec<char> = pattern.chars().collect();
            proptest::prop_assert_eq!(
                like_match(&text, &pattern),
                naive_like(&t, &p),
                "text={:?} pattern={:?}",
                text,
                pattern
            );
        }
    }
}
