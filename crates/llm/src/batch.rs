//! Tuple batching: packing several per-tuple task prompts into one physical
//! LLM call and splitting the structured answer back per tuple.
//!
//! Packing is purely a transport optimization: the member prompts are the
//! exact prompts the scan planned (so logical call accounting and the
//! per-tuple parsers are untouched), joined by an unambiguous separator
//! line. A model that understands the separator ([`crate::SimLlm`] does)
//! answers each member section independently and joins the answers with the
//! same separator; [`split_response`] cuts the combined completion back into
//! one response per member, dividing the physical cost evenly.
//!
//! Rows and logical call counts are byte-identical at any
//! `batch_rows_per_call`: only the number of physical calls changes.

use crate::model::CompletionResponse;

/// The separator line between member sections of a packed prompt (and of a
/// packed completion). Chosen to never occur in task prompts or pipe-format
/// completions.
pub const BATCH_SEPARATOR: &str = "=====LLMSQL-BATCH-MEMBER=====";

/// True when `prompt` is a packed composite (contains the separator line).
pub fn is_packed(prompt: &str) -> bool {
    prompt.contains(BATCH_SEPARATOR)
}

/// Pack `prompts` into one composite prompt. With fewer than two members
/// this is the identity (a single prompt is sent unwrapped).
pub fn pack_prompts(prompts: &[String]) -> String {
    if prompts.len() == 1 {
        return prompts[0].clone();
    }
    prompts.join(&format!("\n{BATCH_SEPARATOR}\n"))
}

/// Split a packed prompt back into its member prompts.
pub fn split_prompt(prompt: &str) -> Vec<&str> {
    prompt
        .split(BATCH_SEPARATOR)
        .map(|part| part.trim_matches('\n'))
        .collect()
}

/// Split one physical completion over a packed prompt back into `members`
/// per-member responses. Sections map to members in order; a completion
/// with fewer sections than members yields empty text for the tail (the
/// per-tuple parsers treat empty text as "no answer", mirroring what a
/// truncated unpacked completion would produce). The physical token and
/// dollar cost is divided evenly across members so per-query usage sums
/// stay meaningful.
pub fn split_response(response: &CompletionResponse, members: usize) -> Vec<CompletionResponse> {
    if members <= 1 {
        return vec![response.clone()];
    }
    let mut sections: Vec<&str> = response
        .text
        .split(BATCH_SEPARATOR)
        .map(|part| part.trim_matches('\n'))
        .collect();
    sections.resize(members, "");
    let share = |total: usize| total / members;
    sections
        .into_iter()
        .take(members)
        .map(|text| CompletionResponse {
            text: text.to_string(),
            prompt_tokens: share(response.prompt_tokens),
            completion_tokens: share(response.completion_tokens),
            latency_ms: response.latency_ms,
            cost_usd: response.cost_usd / members as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_and_split_round_trip() {
        let prompts = vec!["alpha\nline".to_string(), "beta".to_string(), "g".into()];
        let packed = pack_prompts(&prompts);
        assert!(is_packed(&packed));
        let members = split_prompt(&packed);
        assert_eq!(members, vec!["alpha\nline", "beta", "g"]);
    }

    #[test]
    fn single_prompt_is_identity() {
        let prompts = vec!["only".to_string()];
        assert_eq!(pack_prompts(&prompts), "only");
        assert!(!is_packed("only"));
    }

    #[test]
    fn response_split_preserves_member_order_and_divides_cost() {
        let response = CompletionResponse {
            text: format!("a|1\n{BATCH_SEPARATOR}\nb|2\n{BATCH_SEPARATOR}\nc|3"),
            prompt_tokens: 30,
            completion_tokens: 9,
            latency_ms: 5.0,
            cost_usd: 0.3,
        };
        let parts = split_response(&response, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].text, "a|1");
        assert_eq!(parts[1].text, "b|2");
        assert_eq!(parts[2].text, "c|3");
        assert!((parts[0].cost_usd - 0.1).abs() < 1e-12);
        assert_eq!(parts[0].prompt_tokens, 10);
    }

    #[test]
    fn short_completions_pad_with_empty_sections() {
        let response = CompletionResponse {
            text: format!("a|1\n{BATCH_SEPARATOR}\nb|2"),
            prompt_tokens: 4,
            completion_tokens: 4,
            latency_ms: 0.0,
            cost_usd: 0.0,
        };
        let parts = split_response(&response, 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[2].text, "");
        assert_eq!(parts[3].text, "");
    }
}
