//! The fidelity / noise model of the simulated language model.
//!
//! The central design decision: *whether the model knows a fact is a stable
//! property of the fact*, not of the request. Knowledge decisions (does the
//! model know this entity? does it recall this attribute? does it hallucinate
//! a replacement?) are derived from a deterministic hash of
//! `(seed, table, entity, column)`, so repeated or paginated prompts see a
//! consistent world. Presentation noise (formatting violations, numeric
//! perturbation) is derived from the same scheme plus the request context, so
//! it is reproducible run-to-run as well.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use llmsql_types::{DataType, LlmFidelity, Value};

/// Deterministic pseudo-random number in `[0, 1)` from hashable parts.
pub fn hash01(parts: &[&str], seed: u64) -> f64 {
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    for p in parts {
        p.hash(&mut h);
        0xDEADBEEFu32.hash(&mut h);
    }
    let v = h.finish();
    (v >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic pseudo-random u64 from hashable parts.
pub fn hash_u64(parts: &[&str], seed: u64) -> u64 {
    let mut h = DefaultHasher::new();
    seed.wrapping_mul(0x9E3779B97F4A7C15).hash(&mut h);
    for p in parts {
        p.hash(&mut h);
    }
    h.finish()
}

/// The noise model bound to a fidelity configuration and a seed.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    /// The fidelity knobs.
    pub fidelity: LlmFidelity,
    /// The world seed.
    pub seed: u64,
}

impl NoiseModel {
    /// Create a noise model.
    pub fn new(fidelity: LlmFidelity, seed: u64) -> Self {
        NoiseModel { fidelity, seed }
    }

    /// Does the model know this entity exists (can it enumerate it)?
    pub fn knows_entity(&self, table: &str, key: &str) -> bool {
        hash01(&["entity", table, key], self.seed) < self.fidelity.enumeration_coverage
    }

    /// Does the model recall this particular attribute value?
    pub fn recalls_fact(&self, table: &str, key: &str, column: &str) -> bool {
        hash01(&["fact", table, key, column], self.seed) < self.fidelity.recall
    }

    /// When a fact is not recalled (or the entity is unknown), does the model
    /// fabricate a plausible-looking value instead of admitting ignorance?
    pub fn hallucinates_fact(&self, table: &str, key: &str, column: &str) -> bool {
        hash01(&["hallucinate", table, key, column], self.seed) < self.fidelity.hallucination
    }

    /// Is a recalled value corrupted (stale / slightly wrong)?
    pub fn corrupts_fact(&self, table: &str, key: &str, column: &str) -> bool {
        hash01(&["corrupt", table, key, column], self.seed) < self.fidelity.value_noise
    }

    /// Should this output line violate the requested format?
    pub fn mangles_line(&self, context: &str, line_idx: usize) -> bool {
        hash01(&["format", context, &line_idx.to_string()], self.seed) < self.fidelity.format_noise
    }

    /// Probability-free accessor used by enumeration hallucination: how many
    /// fabricated entities to add to a listing of `real_count` entities.
    pub fn fabricated_entity_count(&self, table: &str, real_count: usize) -> usize {
        let expected = real_count as f64 * self.fidelity.hallucination * 0.5;
        let frac = hash01(&["fab_count", table], self.seed);
        (expected + frac).floor() as usize
    }

    /// Produce the value the model reports for a fact, given the true value.
    ///
    /// Returns `None` when the model omits the fact entirely (does not recall
    /// it and does not hallucinate). `Some(Value::Null)` means the model
    /// explicitly answers "unknown".
    pub fn observe_fact(
        &self,
        table: &str,
        key: &str,
        column: &str,
        truth: &Value,
        data_type: DataType,
    ) -> Option<Value> {
        if self.recalls_fact(table, key, column) {
            if self.corrupts_fact(table, key, column) {
                Some(self.corrupt_value(table, key, column, truth, data_type))
            } else {
                Some(truth.clone())
            }
        } else if self.hallucinates_fact(table, key, column) {
            Some(self.fabricate_value(table, key, column, data_type))
        } else {
            None
        }
    }

    /// Corrupt a true value into a plausible but wrong one.
    pub fn corrupt_value(
        &self,
        table: &str,
        key: &str,
        column: &str,
        truth: &Value,
        data_type: DataType,
    ) -> Value {
        let h = hash_u64(&["corrupt_val", table, key, column], self.seed);
        match (truth, data_type) {
            (Value::Int(i), _) => {
                // Off by a relative factor between -20% and +20% (never zero).
                let pct = ((h % 39) as i64 - 19).max(1);
                let delta = (*i as i128 * pct as i128 / 100).max(1) as i64;
                Value::Int(i + if h.is_multiple_of(2) { delta } else { -delta })
            }
            (Value::Float(f), _) => {
                let pct = ((h % 39) as f64 - 19.0) / 100.0;
                Value::Float(f * (1.0 + if pct == 0.0 { 0.07 } else { pct }))
            }
            (Value::Bool(b), _) => Value::Bool(!b),
            (Value::Text(s), _) => {
                // Misspell: duplicate or drop a character deterministically.
                let chars: Vec<char> = s.chars().collect();
                if chars.is_empty() {
                    return Value::Text("unknown".to_string());
                }
                let pos = (h as usize) % chars.len();
                let mut out: String = chars[..pos].iter().collect();
                if h.is_multiple_of(2) {
                    out.push(chars[pos]);
                    out.push(chars[pos]);
                    out.extend(chars[pos + 1..].iter());
                } else {
                    out.extend(chars[pos + 1..].iter());
                    if out.is_empty() {
                        out.push('x');
                    }
                }
                Value::Text(out)
            }
            (Value::Null, ty) => self.fabricate_value(table, key, column, ty),
        }
    }

    /// Invent a plausible-looking value of the given type.
    pub fn fabricate_value(
        &self,
        table: &str,
        key: &str,
        column: &str,
        data_type: DataType,
    ) -> Value {
        let h = hash_u64(&["fabricate", table, key, column], self.seed);
        match data_type {
            DataType::Int => Value::Int(((h % 9_000_000) + 1_000) as i64),
            DataType::Float => Value::Float(((h % 900_000) as f64 / 100.0) + 1.0),
            DataType::Bool => Value::Bool(h.is_multiple_of(2)),
            DataType::Text => {
                const SYLLABLES: [&str; 8] =
                    ["ar", "ben", "cor", "dal", "eth", "fol", "gan", "hul"];
                let mut s = String::new();
                let mut v = h;
                for _ in 0..3 {
                    s.push_str(SYLLABLES[(v % 8) as usize]);
                    v /= 8;
                }
                let mut chars = s.chars();
                let first = chars.next().unwrap_or('X').to_ascii_uppercase();
                Value::Text(format!("{first}{}", chars.as_str()))
            }
        }
    }

    /// Invent a fabricated entity key that does not collide with real keys.
    pub fn fabricate_entity_key(&self, table: &str, ordinal: usize) -> Value {
        let base = self.fabricate_value(table, &format!("fab-{ordinal}"), "key", DataType::Text);
        match base {
            Value::Text(s) => Value::Text(format!("{s}ia")),
            other => other,
        }
    }

    /// Mangle an output line to simulate a formatting violation: the value
    /// separator is replaced by a comma and chatty framing is added.
    pub fn mangle_line(&self, line: &str) -> String {
        format!("I believe it is {} .", line.replace(" | ", ", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(fidelity: LlmFidelity) -> NoiseModel {
        NoiseModel::new(fidelity, 42)
    }

    #[test]
    fn hash01_in_range_and_deterministic() {
        for i in 0..100 {
            let s = i.to_string();
            let v = hash01(&["a", &s], 7);
            assert!((0.0..1.0).contains(&v));
            assert_eq!(v, hash01(&["a", &s], 7));
        }
        assert_ne!(hash01(&["a"], 1), hash01(&["a"], 2));
        assert_ne!(hash01(&["a"], 1), hash01(&["b"], 1));
    }

    #[test]
    fn perfect_fidelity_never_loses_or_lies() {
        let m = model(LlmFidelity::perfect());
        for i in 0..50 {
            let key = format!("k{i}");
            assert!(m.knows_entity("t", &key));
            assert!(m.recalls_fact("t", &key, "c"));
            assert!(!m.corrupts_fact("t", &key, "c"));
            assert!(!m.mangles_line("ctx", i));
            let v = m
                .observe_fact("t", &key, "c", &Value::Int(i as i64), DataType::Int)
                .unwrap();
            assert_eq!(v, Value::Int(i as i64));
        }
        assert_eq!(m.fabricated_entity_count("t", 100), 0);
    }

    #[test]
    fn weak_fidelity_loses_and_fabricates() {
        let m = model(LlmFidelity::weak());
        let mut omitted = 0;
        let mut wrong = 0;
        let mut correct = 0;
        for i in 0..400 {
            let key = format!("k{i}");
            match m.observe_fact("t", &key, "c", &Value::Int(1000), DataType::Int) {
                None => omitted += 1,
                Some(Value::Int(1000)) => correct += 1,
                Some(_) => wrong += 1,
            }
        }
        assert!(omitted > 50, "omitted {omitted}");
        assert!(wrong > 30, "wrong {wrong}");
        assert!(correct > 100, "correct {correct}");
    }

    #[test]
    fn knowledge_is_stable_across_calls() {
        let m = model(LlmFidelity::medium());
        let a: Vec<bool> = (0..100)
            .map(|i| m.knows_entity("countries", &format!("e{i}")))
            .collect();
        let b: Vec<bool> = (0..100)
            .map(|i| m.knows_entity("countries", &format!("e{i}")))
            .collect();
        assert_eq!(a, b);
        // and coverage is roughly the configured fraction
        let frac = a.iter().filter(|x| **x).count() as f64 / 100.0;
        assert!((frac - LlmFidelity::medium().enumeration_coverage).abs() < 0.2);
    }

    #[test]
    fn corruption_changes_values_but_keeps_type() {
        let m = model(LlmFidelity::weak());
        let c = m.corrupt_value("t", "k", "c", &Value::Int(1_000_000), DataType::Int);
        assert!(matches!(c, Value::Int(v) if v != 1_000_000));
        let c = m.corrupt_value("t", "k", "c", &Value::Text("Paris".into()), DataType::Text);
        assert!(matches!(c, Value::Text(ref s) if s != "Paris"));
        let c = m.corrupt_value("t", "k", "c", &Value::Bool(true), DataType::Bool);
        assert_eq!(c, Value::Bool(false));
        let c = m.corrupt_value("t", "k", "c", &Value::Float(10.0), DataType::Float);
        assert!(matches!(c, Value::Float(f) if (f - 10.0).abs() > 1e-9));
    }

    #[test]
    fn fabrication_is_plausible_and_deterministic() {
        let m = model(LlmFidelity::weak());
        let a = m.fabricate_value("t", "k", "population", DataType::Int);
        let b = m.fabricate_value("t", "k", "population", DataType::Int);
        assert_eq!(a, b);
        assert!(matches!(a, Value::Int(v) if v > 0));
        let t = m.fabricate_value("t", "k2", "name", DataType::Text);
        assert!(matches!(t, Value::Text(ref s) if !s.is_empty()));
        let key = m.fabricate_entity_key("countries", 3);
        assert!(matches!(key, Value::Text(ref s) if s.ends_with("ia")));
    }

    #[test]
    fn different_seeds_give_different_worlds() {
        let m1 = NoiseModel::new(LlmFidelity::medium(), 1);
        let m2 = NoiseModel::new(LlmFidelity::medium(), 2);
        let k1: Vec<bool> = (0..200)
            .map(|i| m1.knows_entity("t", &format!("e{i}")))
            .collect();
        let k2: Vec<bool> = (0..200)
            .map(|i| m2.knows_entity("t", &format!("e{i}")))
            .collect();
        assert_ne!(k1, k2);
    }

    #[test]
    fn mangled_line_breaks_pipe_format() {
        let m = model(LlmFidelity::weak());
        let mangled = m.mangle_line("France | Paris");
        assert!(!mangled.contains(" | "));
        assert!(mangled.contains("France"));
    }

    #[test]
    fn fabricated_entity_count_scales() {
        let m = model(LlmFidelity::weak());
        let small = m.fabricated_entity_count("t", 10);
        let large = m.fabricated_entity_count("t", 1000);
        assert!(large > small);
        assert!(large < 1000);
    }
}
