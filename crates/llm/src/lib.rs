#![forbid(unsafe_code)]
//! # llmsql-llm
//!
//! The language-model storage substrate.
//!
//! The paper treats an LLM's parametric knowledge as the storage layer of a
//! DBMS. This crate provides:
//!
//! * the [`LanguageModel`] trait and the [`LlmClient`] wrapper (prompt cache +
//!   usage accounting) the executor talks to,
//! * the [`backend`] dispatch subsystem: the [`Backend`] endpoint trait, the
//!   deterministic [`RemoteLlm`] endpoint simulator, and the [`BackendPool`]
//!   router (round-robin / least-in-flight / cost-aware routing with bounded
//!   retry + exponential-backoff failover),
//! * [`SimLlm`]: a deterministic, seedable **simulated model** over an
//!   explicit [`KnowledgeBase`], with configurable recall, hallucination,
//!   value corruption and format noise ([`llmsql_types::LlmFidelity`]),
//! * the prompt builder ([`prompt::TaskSpec`]) and the tolerant completion
//!   parsers ([`parse`]),
//! * token counting, cost and latency accounting.
//!
//! The simulator is the substitution for the hosted GPT endpoints used in the
//! paper (see DESIGN.md): the engine-side code path is identical, but the
//! storage device is reproducible and its quality is a knob.

#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod cache;
pub mod coalesce;
pub mod cost;
pub mod eval;
pub mod knowledge;
pub mod model;
pub mod noise;
pub mod parse;
pub mod prompt;
pub mod sim;
pub mod tokenizer;

pub use backend::{
    Backend, BackendPool, BackendStats, CallHandle, CallMachine, DirectBackend, HedgePermitGate,
    PoolCall, RemoteLlm,
};
pub use batch::{is_packed, pack_prompts, split_response, BATCH_SEPARATOR};
pub use cache::PromptCache;
pub use coalesce::{Claim, CoalesceStats, FollowerPoll, PromptCoalescer};
pub use cost::UsageStats;
pub use knowledge::{KbTable, KnowledgeBase};
pub use model::{ClientCall, CompletionRequest, CompletionResponse, LanguageModel, LlmClient};
pub use noise::NoiseModel;
pub use parse::{parse_pipe_rows, parse_value_lines, parse_yes_no, ParsedRows, YesNoAnswer};
pub use prompt::{describe_schema, parse_task, TaskSpec};
pub use sim::SimLlm;
pub use tokenizer::count_tokens;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_task() -> impl Strategy<Value = TaskSpec> {
        let ident = "[a-z][a-z0-9_]{0,8}";
        let cols = proptest::collection::vec("[a-z][a-z0-9_]{0,8}", 1..4);
        prop_oneof![
            (
                ident,
                proptest::option::of("[a-z][a-z0-9_ ><=']{0,19}"),
                1usize..200,
                0usize..50
            )
                .prop_map(|(table, filter, limit, offset)| TaskSpec::Enumerate {
                    table,
                    filter: filter.map(|f| f.trim().to_string()),
                    limit,
                    offset
                }),
            (ident, cols.clone(), 1usize..200, 0usize..50).prop_map(
                |(table, columns, limit, offset)| TaskSpec::RowBatch {
                    table,
                    columns,
                    filter: None,
                    limit,
                    offset
                }
            ),
            (ident, "[A-Za-z][A-Za-z ]{0,11}", cols.clone()).prop_map(|(table, key, columns)| {
                TaskSpec::Lookup {
                    table,
                    key: key.trim().to_string(),
                    columns,
                }
            }),
            (ident, "[A-Za-z]{1,12}", "[a-z][a-z0-9_ ><=']{0,19}").prop_map(
                |(table, key, condition)| TaskSpec::FilterCheck {
                    table,
                    key,
                    condition: condition.trim().to_string()
                }
            ),
        ]
    }

    proptest! {
        /// Prompt build → parse recovers the task spec, for arbitrary specs.
        #[test]
        fn prompt_roundtrip(spec in arb_task()) {
            // keys/filters with '|' or newline are not produced by the engine
            let prompt = spec.to_prompt(None);
            let parsed = parse_task(&prompt).unwrap();
            prop_assert_eq!(parsed, spec);
        }

        /// The tolerant row parser never panics and never returns more rows
        /// than input lines.
        #[test]
        fn parser_row_bound(text in "[ -~\n]{0,400}") {
            let parsed = parse_pipe_rows(&text, &[llmsql_types::DataType::Text, llmsql_types::DataType::Int]);
            prop_assert!(parsed.rows.len() <= text.lines().count());
        }

        /// Token counting is monotone under concatenation.
        #[test]
        fn token_count_monotone(a in "[ -~]{0,100}", b in "[ -~]{0,100}") {
            let joined = format!("{a} {b}");
            prop_assert!(count_tokens(&joined) >= count_tokens(&a));
            prop_assert!(count_tokens(&joined) >= count_tokens(&b));
        }
    }
}
