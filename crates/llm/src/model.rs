//! The `LanguageModel` abstraction and the tracked client wrapper.
//!
//! The engine only ever talks to a [`LanguageModel`] through a
//! [`LlmClient`], which adds prompt caching and usage accounting. The
//! simulator ([`crate::sim::SimLlm`]) is the only implementation shipped in
//! this reproduction; a production deployment would add an HTTP-backed
//! implementation without touching the engine.

use std::sync::Arc;

use parking_lot::Mutex;

use llmsql_types::{LlmCostModel, Result};

use crate::cache::PromptCache;
use crate::cost::UsageStats;

/// A completion request.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionRequest {
    /// The full prompt text.
    pub prompt: String,
    /// Maximum completion tokens the caller is willing to receive.
    pub max_tokens: usize,
    /// Sampling temperature (the simulator uses it to scale noise slightly).
    pub temperature: f64,
}

impl CompletionRequest {
    /// Build a request with default limits.
    pub fn new(prompt: impl Into<String>) -> Self {
        CompletionRequest {
            prompt: prompt.into(),
            max_tokens: 2048,
            temperature: 0.0,
        }
    }

    /// Set the maximum completion tokens.
    pub fn with_max_tokens(mut self, max_tokens: usize) -> Self {
        self.max_tokens = max_tokens;
        self
    }
}

/// A completion response with accounting metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionResponse {
    /// The completion text.
    pub text: String,
    /// Tokens in the prompt.
    pub prompt_tokens: usize,
    /// Tokens in the completion.
    pub completion_tokens: usize,
    /// Simulated wall-clock latency of the request in milliseconds.
    pub latency_ms: f64,
    /// Simulated dollar cost of the request.
    pub cost_usd: f64,
}

/// The storage device: anything that turns prompts into completions.
pub trait LanguageModel: Send + Sync {
    /// A short model identifier (shows up in experiment reports).
    fn name(&self) -> String;

    /// Produce a completion for the request.
    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse>;

    /// The cost model of this endpoint (used for reporting only).
    fn cost_model(&self) -> LlmCostModel {
        LlmCostModel::default()
    }
}

/// The client the executor uses: wraps a model with a prompt cache and a
/// usage accumulator. Cloning shares the cache and the counters.
#[derive(Clone)]
pub struct LlmClient {
    model: Arc<dyn LanguageModel>,
    cache: Option<Arc<PromptCache>>,
    usage: Arc<Mutex<UsageStats>>,
}

impl LlmClient {
    /// Wrap a model with caching enabled.
    pub fn new(model: Arc<dyn LanguageModel>) -> Self {
        LlmClient {
            model,
            cache: Some(Arc::new(PromptCache::new())),
            usage: Arc::new(Mutex::new(UsageStats::default())),
        }
    }

    /// Wrap a model without a prompt cache.
    pub fn without_cache(model: Arc<dyn LanguageModel>) -> Self {
        LlmClient {
            model,
            cache: None,
            usage: Arc::new(Mutex::new(UsageStats::default())),
        }
    }

    /// The wrapped model's name.
    pub fn model_name(&self) -> String {
        self.model.name()
    }

    /// Issue a completion, consulting the cache first.
    pub fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse> {
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(&request.prompt) {
                let mut usage = self.usage.lock();
                usage.cache_hits += 1;
                return Ok(hit);
            }
        }
        let response = self.model.complete(request)?;
        {
            let mut usage = self.usage.lock();
            usage.record(&response);
        }
        if let Some(cache) = &self.cache {
            cache.put(request.prompt.clone(), response.clone());
        }
        Ok(response)
    }

    /// A snapshot of accumulated usage.
    pub fn usage(&self) -> UsageStats {
        self.usage.lock().clone()
    }

    /// Reset the usage counters (between experiment runs).
    pub fn reset_usage(&self) {
        *self.usage.lock() = UsageStats::default();
    }

    /// Clear the prompt cache.
    pub fn clear_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.clear();
        }
    }

    /// Number of cached prompts.
    pub fn cache_len(&self) -> usize {
        self.cache.as_ref().map(|c| c.len()).unwrap_or(0)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::tokenizer::count_tokens;
    use parking_lot::Mutex;

    /// A model that echoes a canned response and counts invocations.
    pub struct CannedModel {
        pub response: String,
        pub calls: Mutex<usize>,
    }

    impl CannedModel {
        pub fn new(response: &str) -> Self {
            CannedModel {
                response: response.to_string(),
                calls: Mutex::new(0),
            }
        }
    }

    impl LanguageModel for CannedModel {
        fn name(&self) -> String {
            "canned".to_string()
        }

        fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse> {
            *self.calls.lock() += 1;
            Ok(CompletionResponse {
                text: self.response.clone(),
                prompt_tokens: count_tokens(&request.prompt),
                completion_tokens: count_tokens(&self.response),
                latency_ms: 10.0,
                cost_usd: 0.001,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::CannedModel;
    use super::*;

    #[test]
    fn client_tracks_usage() {
        let model = Arc::new(CannedModel::new("Paris"));
        let client = LlmClient::without_cache(model.clone());
        let req = CompletionRequest::new("What is the capital of France?");
        let resp = client.complete(&req).unwrap();
        assert_eq!(resp.text, "Paris");
        let resp2 = client.complete(&req).unwrap();
        assert_eq!(resp2.text, "Paris");
        let usage = client.usage();
        assert_eq!(usage.calls, 2);
        assert_eq!(usage.cache_hits, 0);
        assert!(usage.prompt_tokens > 0);
        assert_eq!(*model.calls.lock(), 2);
    }

    #[test]
    fn cache_avoids_repeat_calls() {
        let model = Arc::new(CannedModel::new("42"));
        let client = LlmClient::new(model.clone());
        let req = CompletionRequest::new("same prompt");
        client.complete(&req).unwrap();
        client.complete(&req).unwrap();
        client.complete(&req).unwrap();
        assert_eq!(*model.calls.lock(), 1);
        let usage = client.usage();
        assert_eq!(usage.calls, 1);
        assert_eq!(usage.cache_hits, 2);
        assert_eq!(client.cache_len(), 1);
        client.clear_cache();
        assert_eq!(client.cache_len(), 0);
    }

    #[test]
    fn usage_reset() {
        let client = LlmClient::new(Arc::new(CannedModel::new("x")));
        client.complete(&CompletionRequest::new("p")).unwrap();
        assert_eq!(client.usage().calls, 1);
        client.reset_usage();
        assert_eq!(client.usage().calls, 0);
    }

    #[test]
    fn clones_share_state() {
        let client = LlmClient::new(Arc::new(CannedModel::new("x")));
        let clone = client.clone();
        clone.complete(&CompletionRequest::new("p")).unwrap();
        assert_eq!(client.usage().calls, 1);
    }

    #[test]
    fn request_builder() {
        let r = CompletionRequest::new("hi").with_max_tokens(16);
        assert_eq!(r.max_tokens, 16);
        assert_eq!(r.temperature, 0.0);
    }
}
