//! The `LanguageModel` abstraction and the tracked client wrapper.
//!
//! The engine only ever talks to a [`LanguageModel`] through a
//! [`LlmClient`], which adds prompt caching and usage accounting. Two
//! implementations ship in this reproduction: the simulator
//! ([`crate::sim::SimLlm`]) and the multi-backend router
//! ([`crate::backend::BackendPool`], itself composed of [`crate::backend::Backend`]
//! endpoints); a production deployment would add an HTTP-backed endpoint
//! without touching the engine.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use llmsql_types::{LlmCostModel, Result};

use crate::backend::{BackendPool, BackendStats, CallHandle};
use crate::cache::PromptCache;
use crate::coalesce::{Claim, CoalesceEntry, CoalesceGuard, FollowerPoll, PromptCoalescer};
use crate::cost::UsageStats;

/// A completion request.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionRequest {
    /// The full prompt text.
    pub prompt: String,
    /// Maximum completion tokens the caller is willing to receive.
    pub max_tokens: usize,
    /// Sampling temperature (the simulator uses it to scale noise slightly).
    pub temperature: f64,
}

impl CompletionRequest {
    /// Build a request with default limits.
    pub fn new(prompt: impl Into<String>) -> Self {
        CompletionRequest {
            prompt: prompt.into(),
            max_tokens: 2048,
            temperature: 0.0,
        }
    }

    /// Set the maximum completion tokens.
    pub fn with_max_tokens(mut self, max_tokens: usize) -> Self {
        self.max_tokens = max_tokens;
        self
    }
}

/// A completion response with accounting metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionResponse {
    /// The completion text.
    pub text: String,
    /// Tokens in the prompt.
    pub prompt_tokens: usize,
    /// Tokens in the completion.
    pub completion_tokens: usize,
    /// Simulated wall-clock latency of the request in milliseconds.
    pub latency_ms: f64,
    /// Simulated dollar cost of the request.
    pub cost_usd: f64,
}

/// The storage device: anything that turns prompts into completions.
pub trait LanguageModel: Send + Sync {
    /// A short model identifier (shows up in experiment reports).
    fn name(&self) -> String;

    /// Produce a completion for the request.
    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse>;

    /// Non-blocking submission: return a poll-based [`CallHandle`] instead of
    /// blocking for the round trip. The default is a blocking adapter
    /// (`complete` runs inline, the handle comes back resolved) so every
    /// existing model works unchanged; models that can represent their
    /// latency as a timer ([`crate::SimLlm`] with simulated latency,
    /// [`crate::BackendPool`] over async backends) override it — that is
    /// what lets one OS thread hold many in-flight requests.
    fn submit(&self, request: &CompletionRequest) -> CallHandle {
        CallHandle::ready(self.complete(request))
    }

    /// True when [`LanguageModel::submit`] returns without blocking on the
    /// round trip; event-driven dispatch engages only then.
    fn supports_async_submit(&self) -> bool {
        false
    }

    /// Semantic identity of this model: two models with equal fingerprints
    /// must produce byte-identical completion text for every prompt. Folded
    /// into prompt-cache and single-flight keys so clients over different
    /// model configurations can share a cache without collisions. The default
    /// reuses [`LanguageModel::name`]; override it when the name omits
    /// configuration that changes completions.
    fn fingerprint(&self) -> String {
        self.name()
    }

    /// The cost model of this endpoint (used for reporting only).
    fn cost_model(&self) -> LlmCostModel {
        LlmCostModel::default()
    }

    /// How many lines this model would emit for an unfiltered, unpaginated
    /// enumeration of `table` — its *observed* cardinality of the relation
    /// (which under fidelity noise differs from the ground truth: forgotten
    /// entities are missing, fabricated ones included). Scans use the hint to
    /// stop speculative pagination at the relation's end instead of paying
    /// for pages past it. `None` (the default) means the model offers no
    /// hint and scans probe for the end as before. When a hint is returned
    /// it must be exact and stable across calls, or pagination desyncs.
    fn relation_cardinality(&self, _table: &str) -> Option<u64> {
        None
    }
}

/// Tracks prompts with a completion currently being computed, so concurrent
/// requests for the same prompt collapse into one model call (single-flight).
#[derive(Default)]
struct InFlightPrompts {
    leaders: std::sync::Mutex<std::collections::HashSet<String>>,
    done: std::sync::Condvar,
}

impl InFlightPrompts {
    /// Become the leader for `prompt`, or block until the current leader
    /// finishes (returning `false`, after which the caller re-checks the
    /// cache).
    fn claim(&self, prompt: &str) -> bool {
        let mut leaders = self.leaders.lock().unwrap_or_else(|e| e.into_inner());
        if leaders.insert(prompt.to_string()) {
            return true;
        }
        // Follower: wait for some leader to finish, then re-check the cache.
        let _guard = self
            .done
            .wait_while(leaders, |l| l.contains(prompt))
            .unwrap_or_else(|e| e.into_inner());
        false
    }

    /// Non-blocking leadership claim for the poll-driven path: `true` makes
    /// the caller the leader; `false` means another leader is in flight and
    /// the caller should re-check the cache later (no wait).
    fn try_claim(&self, prompt: &str) -> bool {
        self.leaders
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(prompt.to_string())
    }

    /// Leader is done (successfully or not): wake followers.
    fn release(&self, prompt: &str) {
        self.leaders
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(prompt);
        self.done.notify_all();
    }
}

/// The client the executor uses: wraps a model with a prompt cache and a
/// usage accumulator. Cloning shares the cache and the counters.
#[derive(Clone)]
pub struct LlmClient {
    model: Arc<dyn LanguageModel>,
    /// When the model is a [`BackendPool`], a typed handle to it so callers
    /// can read per-backend counters.
    pool: Option<Arc<BackendPool>>,
    cache: Option<Arc<PromptCache>>,
    /// Semantic fingerprint of the wrapped model, folded into every cache /
    /// single-flight key: prompts are only shared between requests that the
    /// same model configuration would answer identically.
    fingerprint: Arc<str>,
    usage: Arc<Mutex<UsageStats>>,
    in_flight: Arc<InFlightPrompts>,
    /// Deployment-scope single-flight table (attached by a scheduler; see
    /// [`crate::coalesce`]). `None` keeps dedup per-client only.
    coalescer: Option<Arc<PromptCoalescer>>,
}

impl LlmClient {
    /// Wrap a model with caching enabled.
    pub fn new(model: Arc<dyn LanguageModel>) -> Self {
        Self::with_shared_cache(model, Arc::new(PromptCache::new()))
    }

    /// Wrap a model over an existing (possibly shared) prompt cache. Clients
    /// over *different* model configurations can safely share one cache: the
    /// model fingerprint is part of every key.
    pub fn with_shared_cache(model: Arc<dyn LanguageModel>, cache: Arc<PromptCache>) -> Self {
        let fingerprint: Arc<str> = model.fingerprint().into();
        LlmClient {
            model,
            pool: None,
            cache: Some(cache),
            fingerprint,
            usage: Arc::new(Mutex::new(UsageStats::default())),
            in_flight: Arc::new(InFlightPrompts::default()),
            coalescer: None,
        }
    }

    /// Wrap a model without a prompt cache.
    pub fn without_cache(model: Arc<dyn LanguageModel>) -> Self {
        let fingerprint: Arc<str> = model.fingerprint().into();
        LlmClient {
            model,
            pool: None,
            cache: None,
            fingerprint,
            usage: Arc::new(Mutex::new(UsageStats::default())),
            in_flight: Arc::new(InFlightPrompts::default()),
            coalescer: None,
        }
    }

    /// Wrap a multi-backend pool (with caching when `cached`). Completions
    /// route through the pool's policy + failover; [`LlmClient::backend_stats`]
    /// exposes the per-backend counters.
    pub fn from_pool(pool: Arc<BackendPool>, cached: bool) -> Self {
        let mut client = if cached {
            Self::new(Arc::clone(&pool) as Arc<dyn LanguageModel>)
        } else {
            Self::without_cache(Arc::clone(&pool) as Arc<dyn LanguageModel>)
        };
        client.pool = Some(pool);
        client
    }

    /// The wrapped model's name.
    pub fn model_name(&self) -> String {
        self.model.name()
    }

    /// Per-backend physical-call counters, when the client wraps a pool.
    pub fn backend_stats(&self) -> Option<Vec<BackendStats>> {
        self.pool.as_ref().map(|p| p.stats())
    }

    /// The wrapped [`BackendPool`], when this client routes through one
    /// (hedge-gate wiring and EWMA inspection go through this handle).
    pub fn pool(&self) -> Option<&Arc<BackendPool>> {
        self.pool.as_ref()
    }

    /// Attach (or detach) a deployment-scope [`PromptCoalescer`]. Poll-driven
    /// calls ([`LlmClient::start_call`]) claim their request key there before
    /// dispatching, so identical in-flight requests from *different* clients
    /// and queries collapse into one physical call whose success fans out to
    /// every waiter. Blocking calls ([`LlmClient::complete`]) are unaffected.
    pub fn set_coalescer(&mut self, coalescer: Option<Arc<PromptCoalescer>>) {
        self.coalescer = coalescer;
    }

    /// The attached deployment-scope coalescer, if any.
    pub fn coalescer(&self) -> Option<&Arc<PromptCoalescer>> {
        self.coalescer.as_ref()
    }

    /// The wrapped model's observed cardinality of `table`, if it reports
    /// one (see [`LanguageModel::relation_cardinality`]).
    pub fn relation_cardinality(&self, table: &str) -> Option<u64> {
        self.model.relation_cardinality(table)
    }

    /// The cache / single-flight key for a request: the model fingerprint
    /// plus every request parameter that can change the completion. Two
    /// queries sharing a prompt string but differing in model config,
    /// `max_tokens` or `temperature` never collide.
    fn request_key(&self, request: &CompletionRequest) -> String {
        format!(
            "{}\u{1f}{}\u{1f}{}\u{1f}{}",
            self.fingerprint, request.max_tokens, request.temperature, request.prompt
        )
    }

    /// Issue a completion, consulting the cache first. Concurrent calls with
    /// an identical request key are deduplicated (single-flight): one thread
    /// queries the model, the others wait and take the cached result, so
    /// parallel dispatch never pays for a completion a sequential run would
    /// have served from the cache.
    pub fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse> {
        self.complete_gated(request, || ())
    }

    /// [`LlmClient::complete`] with an admission gate: `gate` is invoked
    /// immediately before the model is actually dispatched to — and only
    /// then — and whatever it returns (typically an RAII permit such as a
    /// `CallSlots` guard) is held until the model responds. Cache hits and
    /// single-flight followers never invoke the gate, so under a cross-query
    /// scheduler they neither consume slot capacity nor wait for it.
    pub fn complete_gated<G>(
        &self,
        request: &CompletionRequest,
        gate: impl FnOnce() -> G,
    ) -> Result<CompletionResponse> {
        let Some(cache) = &self.cache else {
            let _permit = gate();
            return self.complete_uncached(request);
        };
        let key = self.request_key(request);
        let mut gate = Some(gate);
        loop {
            if let Some(hit) = cache.get(&key) {
                let mut usage = self.usage.lock();
                usage.cache_hits += 1;
                return Ok(hit);
            }
            if self.in_flight.claim(&key) {
                // Release on every exit path, including unwinding, so
                // followers are never stranded.
                struct ReleaseOnDrop<'a>(&'a InFlightPrompts, &'a str);
                impl Drop for ReleaseOnDrop<'_> {
                    fn drop(&mut self) {
                        self.0.release(self.1);
                    }
                }
                let _release = ReleaseOnDrop(&self.in_flight, &key);
                // Double-check: a previous leader may have populated the
                // cache between our miss and our claim.
                if let Some(hit) = cache.get(&key) {
                    let mut usage = self.usage.lock();
                    usage.cache_hits += 1;
                    return Ok(hit);
                }
                let _permit = (gate.take().expect("gate invoked at most once"))();
                let response = self.complete_uncached(request);
                if let Ok(response) = &response {
                    cache.put(key.clone(), response.clone());
                }
                return response;
            }
            // A leader just finished this prompt; loop to pick up its result
            // from the cache (or claim leadership if it failed).
        }
    }

    fn complete_uncached(&self, request: &CompletionRequest) -> Result<CompletionResponse> {
        let response = self.model.complete(request)?;
        {
            let mut usage = self.usage.lock();
            usage.record(&response);
        }
        Ok(response)
    }

    /// True when the wrapped model supports non-blocking submission
    /// ([`LanguageModel::supports_async_submit`]); callers use this to pick
    /// event-driven dispatch over thread-per-request dispatch.
    pub fn supports_async(&self) -> bool {
        self.model.supports_async_submit()
    }

    /// Begin one completion as a poll-driven [`ClientCall`] — the
    /// non-blocking counterpart of [`LlmClient::complete_gated`], with the
    /// same cache, single-flight and admission-gate semantics. Poll it from
    /// an event loop (`llmsql_exec::reactor`); dropping it mid-flight
    /// releases single-flight leadership and any held permit.
    pub fn start_call(&self, request: CompletionRequest) -> ClientCall {
        let key = self.cache.as_ref().map(|_| self.request_key(&request));
        let coalesce_key = self.coalescer.as_ref().map(|_| self.request_key(&request));
        ClientCall {
            client: self.clone(),
            request,
            key,
            coalesce_key,
            co_guard: None,
            coalesced: false,
            holds_leadership: false,
            permit: None,
            state: CcState::Start,
        }
    }

    /// A snapshot of accumulated usage.
    pub fn usage(&self) -> UsageStats {
        self.usage.lock().clone()
    }

    /// Reset the usage counters (between experiment runs).
    pub fn reset_usage(&self) {
        *self.usage.lock() = UsageStats::default();
    }

    /// Clear the prompt cache.
    pub fn clear_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.clear();
        }
    }

    /// Number of cached prompts.
    pub fn cache_len(&self) -> usize {
        self.cache.as_ref().map(|c| c.len()).unwrap_or(0)
    }
}

/// How soon a single-flight follower re-checks the cache for its leader's
/// result, and how soon a slot-starved call re-consults the admission gate.
/// Event loops also re-poll eagerly after any completion in the same loop
/// (a completion is what frees a slot), so this is a cross-thread fallback,
/// not the primary wake mechanism.
const CLIENT_CALL_RETRY: Duration = Duration::from_micros(500);

/// Which phase of its life a [`ClientCall`] is in.
enum CcState {
    /// Not yet dispatched: check the cache, claim single-flight leadership.
    Start,
    /// Another leader is computing this prompt; re-check at `retry_at`.
    Follower { retry_at: Instant },
    /// A deployment-scope leader for this request key is in flight on some
    /// *other* client/query; poll the shared entry at `retry_at` for its
    /// fanned-out result (see [`crate::coalesce`]).
    CoFollower {
        entry: Arc<CoalesceEntry>,
        retry_at: Instant,
    },
    /// Leader without a permit: the admission gate said "no capacity";
    /// re-consult it at `retry_at` (absolute, so the event loop's due-check
    /// actually comes due — a completion elsewhere may re-poll sooner).
    AwaitingSlot { retry_at: Instant },
    /// Dispatched to the model.
    InFlight { handle: CallHandle },
    /// Resolved (result already handed out).
    Done,
}

/// A poll-driven [`LlmClient`] completion: the non-blocking counterpart of
/// [`LlmClient::complete_gated`], created by [`LlmClient::start_call`].
///
/// The completion contract:
///
/// * `poll` never blocks (up to the model's `submit`, which for async models
///   is compute only) and returns the result exactly once.
/// * Cache hits and single-flight followers resolve without ever consulting
///   the admission gate — identical to the blocking path, so under a
///   cross-query scheduler they neither consume nor wait for slot capacity.
/// * The gate is consulted only when this call is the single-flight leader
///   and a real dispatch is imminent; a `None` verdict parks the call (the
///   gate is re-consulted on later polls), a permit is held until the model
///   resolves and released with the call — the call owns the slot guard for
///   exactly the dispatch it gates.
/// * When the client carries a deployment-scope [`PromptCoalescer`], the
///   call claims its request key there before consulting the gate: coalesce
///   leaders dispatch and publish their success to every waiter; coalesce
///   followers park without gating and resolve from the leader's fan-out
///   (zero physical calls, [`ClientCall::coalesced`] reports `true`). A
///   leader that fails abandons the entry and followers re-claim, so error
///   and retry semantics per query are unchanged.
/// * Dropping the call mid-flight releases single-flight leadership (so
///   followers elect a new leader instead of waiting forever), abandons any
///   coalesce leadership, and releases the permit; the model-side flight is
///   abandoned.
pub struct ClientCall {
    client: LlmClient,
    request: CompletionRequest,
    /// Cache / single-flight key; `None` when the client has no cache (then
    /// neither caching nor single-flight applies, as in the blocking path).
    key: Option<String>,
    /// Deployment-scope coalescing key; `None` without a coalescer (or after
    /// [`ClientCall::without_dedup`]).
    coalesce_key: Option<String>,
    /// Held while this call leads a deployment-scope flight; resolved with
    /// the outcome when the flight ends.
    co_guard: Option<CoalesceGuard>,
    /// True when the result was served from another query's in-flight call.
    coalesced: bool,
    holds_leadership: bool,
    /// The admission permit held from dispatch to resolution.
    permit: Option<Box<dyn std::any::Any + Send>>,
    state: CcState,
}

impl ClientCall {
    /// Attempt progress. `gate` is the admission gate: called right before a
    /// real dispatch; `Some(permit)` admits (the permit is held for the
    /// flight), `None` parks the call until a later poll. Returns the final
    /// result exactly once; `None` while pending.
    pub fn poll(
        &mut self,
        now: Instant,
        gate: &mut dyn FnMut() -> Option<Box<dyn std::any::Any + Send>>,
    ) -> Option<Result<CompletionResponse>> {
        loop {
            match &mut self.state {
                CcState::Start | CcState::Follower { .. } => {
                    if let Some(key) = &self.key {
                        let cache = self.client.cache.as_ref().expect("key implies cache");
                        if let Some(hit) = cache.get(key) {
                            self.release_leadership();
                            self.client.usage.lock().cache_hits += 1;
                            self.state = CcState::Done;
                            return Some(Ok(hit));
                        }
                        if !self.holds_leadership {
                            if self.client.in_flight.try_claim(key) {
                                self.holds_leadership = true;
                                // Double-check: a previous leader may have
                                // populated the cache between miss and claim.
                                if let Some(hit) = cache.get(key) {
                                    self.release_leadership();
                                    self.client.usage.lock().cache_hits += 1;
                                    self.state = CcState::Done;
                                    return Some(Ok(hit));
                                }
                            } else {
                                self.state = CcState::Follower {
                                    retry_at: now + CLIENT_CALL_RETRY,
                                };
                                return None;
                            }
                        }
                    }
                    if self.co_guard.is_none() {
                        if let (Some(co), Some(ckey)) = (&self.client.coalescer, &self.coalesce_key)
                        {
                            match co.claim(ckey) {
                                Claim::Leader(guard) => self.co_guard = Some(guard),
                                Claim::Follower(entry) => {
                                    self.state = CcState::CoFollower {
                                        entry,
                                        retry_at: now + CLIENT_CALL_RETRY,
                                    };
                                    return None;
                                }
                            }
                        }
                    }
                    self.state = CcState::AwaitingSlot { retry_at: now };
                }
                CcState::CoFollower { entry, retry_at } => match entry.poll() {
                    FollowerPoll::Pending => {
                        *retry_at = now + CLIENT_CALL_RETRY;
                        return None;
                    }
                    FollowerPoll::Ready(response) => {
                        // Served from another query's flight: no physical
                        // call, no usage record — only the leader pays.
                        self.coalesced = true;
                        if let (Some(key), Some(cache)) = (&self.key, &self.client.cache) {
                            cache.put(key.clone(), response.clone());
                        }
                        self.release_leadership();
                        self.state = CcState::Done;
                        return Some(Ok(response));
                    }
                    FollowerPoll::Abandoned => {
                        // The leader failed or was cancelled. Start over: we
                        // re-check the cache and (re-)claim a flight of our
                        // own, preserving per-query retry semantics.
                        self.state = CcState::Start;
                    }
                },
                CcState::AwaitingSlot { .. } => match gate() {
                    Some(permit) => {
                        self.permit = Some(permit);
                        let handle = self.client.model.submit(&self.request);
                        self.state = CcState::InFlight { handle };
                    }
                    None => {
                        self.state = CcState::AwaitingSlot {
                            retry_at: now + CLIENT_CALL_RETRY,
                        };
                        return None;
                    }
                },
                CcState::InFlight { handle } => {
                    let outcome = handle.poll(now)?;
                    self.permit = None;
                    // Fan the outcome out to deployment-scope followers
                    // (successes resolve them; failures make them re-claim).
                    if let Some(guard) = self.co_guard.take() {
                        guard.publish(&outcome);
                    }
                    if let Ok(response) = &outcome {
                        self.client.usage.lock().record(response);
                        if let (Some(key), Some(cache)) = (&self.key, &self.client.cache) {
                            cache.put(key.clone(), response.clone());
                        }
                    }
                    // Either way the leadership ends here: followers pick the
                    // cached result up, or elect a new leader on failure.
                    self.release_leadership();
                    self.state = CcState::Done;
                    return Some(outcome);
                }
                CcState::Done => return None,
            }
        }
    }

    /// When the next [`ClientCall::poll`] can make progress (`None` = now).
    pub fn next_wakeup(&self, now: Instant) -> Option<Instant> {
        match &self.state {
            CcState::Start | CcState::Done => None,
            CcState::Follower { retry_at }
            | CcState::AwaitingSlot { retry_at }
            | CcState::CoFollower { retry_at, .. } => Some(*retry_at),
            CcState::InFlight { handle } => handle.next_wakeup(now),
        }
    }

    /// True when the result was served by fan-out from another query's
    /// in-flight call (zero physical calls issued by this one).
    pub fn coalesced(&self) -> bool {
        self.coalesced
    }

    /// Opt this call out of cross-request dedup — both the per-client
    /// single-flight and the deployment-scope coalescer. Hedge duplicates
    /// use this: their whole purpose is to issue a *second* physical call
    /// for a prompt that is already in flight.
    pub fn without_dedup(mut self) -> Self {
        self.key = None;
        self.coalesce_key = None;
        self
    }

    fn release_leadership(&mut self) {
        if self.holds_leadership {
            self.holds_leadership = false;
            if let Some(key) = &self.key {
                self.client.in_flight.release(key);
            }
        }
    }
}

impl Drop for ClientCall {
    fn drop(&mut self) {
        // Cancellation safety: an abandoned leader must not strand followers.
        self.release_leadership();
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::tokenizer::count_tokens;
    use parking_lot::Mutex;

    /// A model that echoes a canned response and counts invocations.
    pub struct CannedModel {
        pub response: String,
        pub calls: Mutex<usize>,
    }

    impl CannedModel {
        pub fn new(response: &str) -> Self {
            CannedModel {
                response: response.to_string(),
                calls: Mutex::new(0),
            }
        }
    }

    impl LanguageModel for CannedModel {
        fn name(&self) -> String {
            "canned".to_string()
        }

        fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse> {
            *self.calls.lock() += 1;
            Ok(CompletionResponse {
                text: self.response.clone(),
                prompt_tokens: count_tokens(&request.prompt),
                completion_tokens: count_tokens(&self.response),
                latency_ms: 10.0,
                cost_usd: 0.001,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::CannedModel;
    use super::*;

    #[test]
    fn client_tracks_usage() {
        let model = Arc::new(CannedModel::new("Paris"));
        let client = LlmClient::without_cache(model.clone());
        let req = CompletionRequest::new("What is the capital of France?");
        let resp = client.complete(&req).unwrap();
        assert_eq!(resp.text, "Paris");
        let resp2 = client.complete(&req).unwrap();
        assert_eq!(resp2.text, "Paris");
        let usage = client.usage();
        assert_eq!(usage.calls, 2);
        assert_eq!(usage.cache_hits, 0);
        assert!(usage.prompt_tokens > 0);
        assert_eq!(*model.calls.lock(), 2);
    }

    #[test]
    fn cache_avoids_repeat_calls() {
        let model = Arc::new(CannedModel::new("42"));
        let client = LlmClient::new(model.clone());
        let req = CompletionRequest::new("same prompt");
        client.complete(&req).unwrap();
        client.complete(&req).unwrap();
        client.complete(&req).unwrap();
        assert_eq!(*model.calls.lock(), 1);
        let usage = client.usage();
        assert_eq!(usage.calls, 1);
        assert_eq!(usage.cache_hits, 2);
        assert_eq!(client.cache_len(), 1);
        client.clear_cache();
        assert_eq!(client.cache_len(), 0);
    }

    #[test]
    fn concurrent_identical_prompts_are_single_flight() {
        // A slow model: 8 threads racing on one prompt must produce exactly
        // one model call; the rest wait for the leader and take cache hits.
        struct SlowModel {
            calls: Mutex<usize>,
        }
        impl LanguageModel for SlowModel {
            fn name(&self) -> String {
                "slow".into()
            }
            fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse> {
                *self.calls.lock() += 1;
                std::thread::sleep(std::time::Duration::from_millis(30));
                Ok(CompletionResponse {
                    text: "r".into(),
                    prompt_tokens: count_tokens(&request.prompt),
                    completion_tokens: 1,
                    latency_ms: 1.0,
                    cost_usd: 0.001,
                })
            }
        }
        let model = Arc::new(SlowModel {
            calls: Mutex::new(0),
        });
        let client = LlmClient::new(model.clone());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let client = client.clone();
                scope.spawn(move || {
                    client
                        .complete(&CompletionRequest::new("same prompt"))
                        .unwrap()
                });
            }
        });
        assert_eq!(*model.calls.lock(), 1, "model called more than once");
        let usage = client.usage();
        assert_eq!(usage.calls, 1);
        assert_eq!(usage.cache_hits, 7);
    }

    use crate::tokenizer::count_tokens;

    #[test]
    fn usage_reset() {
        let client = LlmClient::new(Arc::new(CannedModel::new("x")));
        client.complete(&CompletionRequest::new("p")).unwrap();
        assert_eq!(client.usage().calls, 1);
        client.reset_usage();
        assert_eq!(client.usage().calls, 0);
    }

    #[test]
    fn clones_share_state() {
        let client = LlmClient::new(Arc::new(CannedModel::new("x")));
        let clone = client.clone();
        clone.complete(&CompletionRequest::new("p")).unwrap();
        assert_eq!(client.usage().calls, 1);
    }

    #[test]
    fn request_builder() {
        let r = CompletionRequest::new("hi").with_max_tokens(16);
        assert_eq!(r.max_tokens, 16);
        assert_eq!(r.temperature, 0.0);
    }

    #[test]
    fn shared_cache_does_not_collide_across_model_configs() {
        // Regression: cache keys used to be the prompt text alone, so two
        // clients over *different* model configurations sharing a cache (or
        // a future cross-query cache) could serve each other's completions.
        struct NamedModel(&'static str);
        impl LanguageModel for NamedModel {
            fn name(&self) -> String {
                self.0.to_string()
            }
            fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse> {
                Ok(CompletionResponse {
                    text: format!("{}-answer", self.0),
                    prompt_tokens: count_tokens(&request.prompt),
                    completion_tokens: 2,
                    latency_ms: 1.0,
                    cost_usd: 0.001,
                })
            }
        }
        let cache = Arc::new(PromptCache::new());
        let a = LlmClient::with_shared_cache(Arc::new(NamedModel("model-a")), Arc::clone(&cache));
        let b = LlmClient::with_shared_cache(Arc::new(NamedModel("model-b")), Arc::clone(&cache));
        let req = CompletionRequest::new("shared prompt");
        assert_eq!(a.complete(&req).unwrap().text, "model-a-answer");
        assert_eq!(b.complete(&req).unwrap().text, "model-b-answer");
        // Each client still hits its own entry on repeat.
        assert_eq!(a.complete(&req).unwrap().text, "model-a-answer");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn gate_is_only_invoked_on_real_dispatch() {
        // Cache hits and single-flight followers must not pay admission
        // (slot) costs: the gate closure runs exactly once per model call.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let model = Arc::new(CannedModel::new("x"));
        let client = LlmClient::new(model.clone());
        let gates = AtomicUsize::new(0);
        let req = CompletionRequest::new("p");
        for _ in 0..3 {
            client
                // ordering: Relaxed — single-threaded test counter.
                .complete_gated(&req, || gates.fetch_add(1, Ordering::Relaxed))
                .unwrap();
        }
        assert_eq!(*model.calls.lock(), 1);
        assert_eq!(
            // ordering: Relaxed — single-threaded test counter.
            gates.load(Ordering::Relaxed),
            1,
            "cache hits must bypass the gate"
        );

        // Single-flight: 8 threads race one slow prompt; only the leader
        // gates.
        struct SlowModel;
        impl LanguageModel for SlowModel {
            fn name(&self) -> String {
                "slow".into()
            }
            fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse> {
                std::thread::sleep(std::time::Duration::from_millis(20));
                Ok(CompletionResponse {
                    text: "r".into(),
                    prompt_tokens: count_tokens(&request.prompt),
                    completion_tokens: 1,
                    latency_ms: 1.0,
                    cost_usd: 0.001,
                })
            }
        }
        let client = LlmClient::new(Arc::new(SlowModel));
        let gates = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let client = client.clone();
                let gates = &gates;
                scope.spawn(move || {
                    client
                        // ordering: Relaxed — test counter; the scope join
                        // publishes the total to the assert below.
                        .complete_gated(&CompletionRequest::new("same"), || {
                            gates.fetch_add(1, Ordering::Relaxed)
                        })
                        .unwrap()
                });
            }
        });
        assert_eq!(
            // ordering: Relaxed — read after scope join; join synchronizes.
            gates.load(Ordering::Relaxed),
            1,
            "single-flight followers must bypass the gate"
        );
    }

    /// Drive a [`ClientCall`] with an always-granting gate until it resolves.
    fn drive_client_call(mut call: ClientCall) -> Result<CompletionResponse> {
        let mut grant = || Some(Box::new(()) as Box<dyn std::any::Any + Send>);
        loop {
            let now = Instant::now();
            if let Some(result) = call.poll(now, &mut grant) {
                return result;
            }
            if let Some(at) = call.next_wakeup(now) {
                std::thread::sleep(
                    at.saturating_duration_since(now)
                        .clamp(Duration::from_micros(50), Duration::from_millis(2)),
                );
            }
        }
    }

    #[test]
    fn client_call_cache_hits_and_followers_bypass_the_gate() {
        // The async analogue of `gate_is_only_invoked_on_real_dispatch`: the
        // admission gate fires exactly once per real model dispatch; cache
        // hits resolve without consulting it.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let model = Arc::new(CannedModel::new("x"));
        let client = LlmClient::new(model.clone());
        let gates = AtomicUsize::new(0);
        for _ in 0..3 {
            let mut call = client.start_call(CompletionRequest::new("p"));
            let mut gate = || {
                // ordering: Relaxed — single-threaded test counter.
                gates.fetch_add(1, Ordering::Relaxed);
                Some(Box::new(()) as Box<dyn std::any::Any + Send>)
            };
            let resp = loop {
                if let Some(result) = call.poll(Instant::now(), &mut gate) {
                    break result.unwrap();
                }
            };
            assert_eq!(resp.text, "x");
        }
        assert_eq!(*model.calls.lock(), 1);
        assert_eq!(
            // ordering: Relaxed — single-threaded test counter.
            gates.load(Ordering::Relaxed),
            1,
            "cache hits must bypass the gate"
        );
        assert_eq!(client.usage().cache_hits, 2);
    }

    #[test]
    fn client_call_single_flight_followers_park_and_take_the_leaders_result() {
        let model = Arc::new(CannedModel::new("x"));
        let client = LlmClient::new(model.clone());
        let mut deny = || None;
        let mut grant = || Some(Box::new(()) as Box<dyn std::any::Any + Send>);

        // Leader claims but is parked by a denying gate.
        let mut leader = client.start_call(CompletionRequest::new("same"));
        assert!(leader.poll(Instant::now(), &mut deny).is_none());
        // A second call for the same prompt becomes a follower: polling it
        // (even with a granting gate) must NOT dispatch a duplicate.
        let mut follower = client.start_call(CompletionRequest::new("same"));
        assert!(follower.poll(Instant::now(), &mut grant).is_none());
        assert_eq!(*model.calls.lock(), 0);
        // Leader gets capacity and resolves; the follower picks the cached
        // result up without a model call or a gate consultation.
        leader.poll(Instant::now(), &mut grant).unwrap().unwrap();
        let resp = drive_client_call(follower).unwrap();
        assert_eq!(resp.text, "x");
        assert_eq!(*model.calls.lock(), 1, "follower dispatched a duplicate");
        assert_eq!(client.usage().cache_hits, 1);
    }

    #[test]
    fn dropping_a_parked_leader_frees_its_followers() {
        // Cancellation safety: a leader abandoned mid-flight (deadline fired,
        // wave dropped) must release single-flight leadership so a follower
        // can become the new leader instead of waiting forever.
        let model = Arc::new(CannedModel::new("x"));
        let client = LlmClient::new(model.clone());
        let mut deny = || None;

        let mut leader = client.start_call(CompletionRequest::new("same"));
        assert!(leader.poll(Instant::now(), &mut deny).is_none());
        let mut follower = client.start_call(CompletionRequest::new("same"));
        assert!(follower.poll(Instant::now(), &mut deny).is_none());
        drop(leader); // cancelled — e.g. its wave hit the query deadline
        let resp = drive_client_call(follower).unwrap();
        assert_eq!(resp.text, "x");
        assert_eq!(*model.calls.lock(), 1);
    }

    #[test]
    fn coalescer_fans_one_flight_out_across_clients() {
        // Two *distinct* clients (cache off, so per-client single-flight is
        // inert) over one model and one coalescer: the first call leads and
        // pays; an identical concurrent call from the other client follows
        // and resolves from the fan-out with zero physical calls.
        let model = Arc::new(CannedModel::new("x"));
        let co = Arc::new(PromptCoalescer::new());
        let mut a = LlmClient::without_cache(model.clone());
        a.set_coalescer(Some(Arc::clone(&co)));
        let mut b = LlmClient::without_cache(model.clone());
        b.set_coalescer(Some(Arc::clone(&co)));

        let mut deny = || None;
        let mut grant = || Some(Box::new(()) as Box<dyn std::any::Any + Send>);
        let mut leader = a.start_call(CompletionRequest::new("same"));
        assert!(leader.poll(Instant::now(), &mut deny).is_none());
        let mut follower = b.start_call(CompletionRequest::new("same"));
        // Even with a granting gate, the follower must not dispatch.
        assert!(follower.poll(Instant::now(), &mut grant).is_none());
        assert_eq!(*model.calls.lock(), 0);

        leader.poll(Instant::now(), &mut grant).unwrap().unwrap();
        let resp = loop {
            if let Some(result) = follower.poll(Instant::now(), &mut grant) {
                break result.unwrap();
            }
        };
        assert_eq!(resp.text, "x");
        assert!(follower.coalesced());
        assert!(!leader.coalesced());
        assert_eq!(*model.calls.lock(), 1, "follower issued a physical call");
        assert_eq!(a.usage().calls, 1, "leader records its physical call");
        assert_eq!(b.usage().calls, 0, "follower records no physical call");
    }

    #[test]
    fn coalesce_followers_reclaim_after_a_dropped_leader() {
        let model = Arc::new(CannedModel::new("x"));
        let co = Arc::new(PromptCoalescer::new());
        let mut a = LlmClient::without_cache(model.clone());
        a.set_coalescer(Some(Arc::clone(&co)));
        let mut b = LlmClient::without_cache(model.clone());
        b.set_coalescer(Some(Arc::clone(&co)));

        let mut deny = || None;
        let mut grant = || Some(Box::new(()) as Box<dyn std::any::Any + Send>);
        let mut leader = a.start_call(CompletionRequest::new("same"));
        assert!(leader.poll(Instant::now(), &mut deny).is_none());
        let mut follower = b.start_call(CompletionRequest::new("same"));
        assert!(follower.poll(Instant::now(), &mut grant).is_none());
        drop(leader); // cancelled mid-flight (deadline, wave dropped, ...)
        let resp = loop {
            if let Some(result) = follower.poll(Instant::now(), &mut grant) {
                break result.unwrap();
            }
        };
        assert_eq!(resp.text, "x");
        assert!(!follower.coalesced(), "reclaimed flights are not coalesced");
        assert_eq!(*model.calls.lock(), 1);
        assert_eq!(b.usage().calls, 1, "new leader pays for its own flight");
    }

    #[test]
    fn without_dedup_bypasses_the_coalescer() {
        // A hedge duplicate must issue a real second flight even while an
        // identical request is in front of it.
        let model = Arc::new(CannedModel::new("x"));
        let co = Arc::new(PromptCoalescer::new());
        let mut client = LlmClient::without_cache(model.clone());
        client.set_coalescer(Some(Arc::clone(&co)));

        let mut deny = || None;
        let mut grant = || Some(Box::new(()) as Box<dyn std::any::Any + Send>);
        let mut primary = client.start_call(CompletionRequest::new("same"));
        assert!(primary.poll(Instant::now(), &mut deny).is_none());
        let mut hedge = client
            .start_call(CompletionRequest::new("same"))
            .without_dedup();
        hedge.poll(Instant::now(), &mut grant).unwrap().unwrap();
        assert_eq!(*model.calls.lock(), 1, "hedge must dispatch for real");
        primary.poll(Instant::now(), &mut grant).unwrap().unwrap();
        assert_eq!(*model.calls.lock(), 2);
    }

    #[test]
    fn request_params_are_part_of_the_cache_key() {
        // The same prompt at different max_tokens can produce different
        // (truncated) completions — those must not share a cache slot.
        let client = LlmClient::new(Arc::new(CannedModel::new("x")));
        client
            .complete(&CompletionRequest::new("p").with_max_tokens(8))
            .unwrap();
        client
            .complete(&CompletionRequest::new("p").with_max_tokens(2048))
            .unwrap();
        assert_eq!(client.usage().calls, 2, "different max_tokens collided");
        assert_eq!(client.cache_len(), 2);
    }
}
