//! Accuracy evaluation: scoring an LLM-backed result against the ground-truth
//! oracle result.
//!
//! The paper's central measurement is how *correct* query answers are when
//! the storage layer is a language model. Following the standard methodology
//! of the Galois-style prototypes, results are compared as bags of tuples:
//!
//! * **precision** — fraction of returned tuples that appear in the oracle
//!   answer (penalises hallucinated rows and corrupted values),
//! * **recall** — fraction of oracle tuples that were returned (penalises
//!   forgotten entities and dropped lines),
//! * **F1** — their harmonic mean.
//!
//! Tuples are normalised before comparison (case-insensitive text, trimmed
//! whitespace, int/float unification, configurable numeric tolerance) so that
//! harmless formatting differences do not count as errors.

use std::collections::HashMap;

use llmsql_types::{Batch, Row, Value};

/// Options controlling tuple comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOptions {
    /// Relative tolerance when comparing numeric values (0.0 = exact).
    pub numeric_tolerance: f64,
    /// Whether row order matters (true only for ORDER BY experiments).
    pub order_sensitive: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            numeric_tolerance: 0.0,
            order_sensitive: false,
        }
    }
}

impl EvalOptions {
    /// Exact, order-insensitive comparison (the default).
    pub fn exact() -> Self {
        EvalOptions::default()
    }

    /// Allow numeric values to differ by the given relative tolerance.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.numeric_tolerance = tol;
        self
    }

    /// Make the comparison order sensitive.
    pub fn order_sensitive(mut self) -> Self {
        self.order_sensitive = true;
        self
    }
}

/// The outcome of scoring a result against the oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultScore {
    /// Tuples returned by the system under test.
    pub returned: usize,
    /// Tuples in the oracle answer.
    pub expected: usize,
    /// Returned tuples that match an oracle tuple.
    pub matched: usize,
    /// Precision = matched / returned (1.0 when nothing was returned and
    /// nothing was expected).
    pub precision: f64,
    /// Recall = matched / expected (1.0 when nothing was expected).
    pub recall: f64,
    /// F1 = harmonic mean of precision and recall.
    pub f1: f64,
    /// True when the result is exactly the oracle answer (same bag, and same
    /// order if order-sensitive).
    pub exact: bool,
}

impl ResultScore {
    fn from_counts(returned: usize, expected: usize, matched: usize, exact: bool) -> Self {
        let precision = if returned == 0 {
            if expected == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            matched as f64 / returned as f64
        };
        let recall = if expected == 0 {
            1.0
        } else {
            matched as f64 / expected as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        ResultScore {
            returned,
            expected,
            matched,
            precision,
            recall,
            f1,
            exact,
        }
    }
}

/// Normalise a value for comparison.
fn normalize(v: &Value) -> Value {
    match v {
        Value::Text(s) => Value::Text(s.trim().to_ascii_lowercase()),
        Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Value::Int(*f as i64),
        other => other.clone(),
    }
}

/// Do two values match under the options?
fn values_match(a: &Value, b: &Value, options: &EvalOptions) -> bool {
    let a = normalize(a);
    let b = normalize(b);
    if a.semantic_eq(&b) {
        return true;
    }
    if options.numeric_tolerance > 0.0 {
        if let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) {
            let scale = x.abs().max(y.abs()).max(1e-12);
            return (x - y).abs() / scale <= options.numeric_tolerance;
        }
    }
    false
}

/// Do two rows match under the options?
fn rows_match(a: &Row, b: &Row, options: &EvalOptions) -> bool {
    if a.arity() != b.arity() {
        return false;
    }
    a.values()
        .iter()
        .zip(b.values())
        .all(|(x, y)| values_match(x, y, options))
}

/// A hashable normalised key for exact (tolerance-free) bag matching.
fn row_key(row: &Row) -> Vec<Value> {
    row.values().iter().map(normalize).collect()
}

/// Score `actual` against the oracle answer `expected`.
pub fn score_batches(actual: &Batch, expected: &Batch, options: &EvalOptions) -> ResultScore {
    score_rows(&actual.rows, &expected.rows, options)
}

/// Score row sets directly.
pub fn score_rows(actual: &[Row], expected: &[Row], options: &EvalOptions) -> ResultScore {
    let matched = if options.numeric_tolerance == 0.0 {
        // Fast path: exact bag intersection via hashing.
        let mut counts: HashMap<Vec<Value>, usize> = HashMap::new();
        for e in expected {
            *counts.entry(row_key(e)).or_default() += 1;
        }
        let mut matched = 0;
        for a in actual {
            if let Some(c) = counts.get_mut(&row_key(a)) {
                if *c > 0 {
                    *c -= 1;
                    matched += 1;
                }
            }
        }
        matched
    } else {
        // Tolerant path: greedy bipartite matching.
        let mut used = vec![false; expected.len()];
        let mut matched = 0;
        for a in actual {
            for (i, e) in expected.iter().enumerate() {
                if !used[i] && rows_match(a, e, options) {
                    used[i] = true;
                    matched += 1;
                    break;
                }
            }
        }
        matched
    };

    let bag_exact = matched == actual.len() && matched == expected.len();
    let exact = if options.order_sensitive {
        bag_exact
            && actual
                .iter()
                .zip(expected)
                .all(|(a, e)| rows_match(a, e, options))
    } else {
        bag_exact
    };
    ResultScore::from_counts(actual.len(), expected.len(), matched, exact)
}

/// Aggregate scores across a suite of queries (macro-average).
#[derive(Debug, Clone, Default)]
pub struct SuiteScore {
    /// Individual query scores.
    pub scores: Vec<ResultScore>,
}

impl SuiteScore {
    /// Add one query's score.
    pub fn push(&mut self, score: ResultScore) {
        self.scores.push(score);
    }

    /// Number of scored queries.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when no queries have been scored.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Macro-averaged precision.
    pub fn precision(&self) -> f64 {
        avg(self.scores.iter().map(|s| s.precision))
    }

    /// Macro-averaged recall.
    pub fn recall(&self) -> f64 {
        avg(self.scores.iter().map(|s| s.recall))
    }

    /// Macro-averaged F1.
    pub fn f1(&self) -> f64 {
        avg(self.scores.iter().map(|s| s.f1))
    }

    /// Fraction of queries answered exactly.
    pub fn exact_rate(&self) -> f64 {
        avg(self.scores.iter().map(|s| if s.exact { 1.0 } else { 0.0 }))
    }
}

fn avg(iter: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = iter.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[&str]) -> Row {
        Row::new(vals.iter().map(|v| Value::Text(v.to_string())).collect())
    }

    #[test]
    fn perfect_match() {
        let a = vec![row(&["France", "Paris"]), row(&["Japan", "Tokyo"])];
        let s = score_rows(&a, &a.clone(), &EvalOptions::exact());
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
        assert!(s.exact);
    }

    #[test]
    fn missing_and_hallucinated_rows() {
        let expected = vec![row(&["a"]), row(&["b"]), row(&["c"]), row(&["d"])];
        let actual = vec![row(&["a"]), row(&["b"]), row(&["zz"])];
        let s = score_rows(&actual, &expected, &EvalOptions::exact());
        assert_eq!(s.matched, 2);
        assert!((s.precision - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.recall - 0.5).abs() < 1e-9);
        assert!(!s.exact);
        assert!(s.f1 > 0.5 && s.f1 < 0.67);
    }

    #[test]
    fn normalization_ignores_case_and_int_float() {
        let expected = vec![Row::new(vec!["France".into(), Value::Int(68)])];
        let actual = vec![Row::new(vec!["  france ".into(), Value::Float(68.0)])];
        let s = score_rows(&actual, &expected, &EvalOptions::exact());
        assert!(s.exact);
    }

    #[test]
    fn numeric_tolerance() {
        let expected = vec![Row::new(vec![Value::Int(100)])];
        let close = vec![Row::new(vec![Value::Int(101)])];
        let strict = score_rows(&close, &expected, &EvalOptions::exact());
        assert_eq!(strict.matched, 0);
        let tolerant = score_rows(
            &close,
            &expected,
            &EvalOptions::exact().with_tolerance(0.05),
        );
        assert_eq!(tolerant.matched, 1);
        let far = vec![Row::new(vec![Value::Int(150)])];
        assert_eq!(
            score_rows(&far, &expected, &EvalOptions::exact().with_tolerance(0.05)).matched,
            0
        );
    }

    #[test]
    fn duplicate_rows_counted_as_bag() {
        let expected = vec![row(&["x"]), row(&["x"])];
        let actual = vec![row(&["x"])];
        let s = score_rows(&actual, &expected, &EvalOptions::exact());
        assert_eq!(s.matched, 1);
        assert_eq!(s.recall, 0.5);
        // over-reporting duplicates hurts precision
        let actual3 = vec![row(&["x"]), row(&["x"]), row(&["x"])];
        let s3 = score_rows(&actual3, &expected, &EvalOptions::exact());
        assert_eq!(s3.matched, 2);
        assert!((s3.precision - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn order_sensitivity() {
        let expected = vec![row(&["a"]), row(&["b"])];
        let reversed = vec![row(&["b"]), row(&["a"])];
        let unordered = score_rows(&reversed, &expected, &EvalOptions::exact());
        assert!(unordered.exact);
        let ordered = score_rows(
            &reversed,
            &expected,
            &EvalOptions::exact().order_sensitive(),
        );
        assert!(!ordered.exact);
        assert_eq!(ordered.f1, 1.0); // bag still matches
    }

    #[test]
    fn empty_results() {
        let s = score_rows(&[], &[], &EvalOptions::exact());
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert!(s.exact);
        let s = score_rows(&[], &[row(&["a"])], &EvalOptions::exact());
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.precision, 0.0);
        let s = score_rows(&[row(&["a"])], &[], &EvalOptions::exact());
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn suite_macro_average() {
        let mut suite = SuiteScore::default();
        suite.push(score_rows(
            &[row(&["a"])],
            &[row(&["a"])],
            &EvalOptions::exact(),
        ));
        suite.push(score_rows(&[], &[row(&["a"])], &EvalOptions::exact()));
        assert_eq!(suite.len(), 2);
        assert!((suite.precision() - 0.5).abs() < 1e-9);
        assert!((suite.recall() - 0.5).abs() < 1e-9);
        assert!((suite.exact_rate() - 0.5).abs() < 1e-9);
        assert!(!suite.is_empty());
    }
}
