//! Query results returned by the engine.

use llmsql_exec::ExecMetrics;
use llmsql_llm::UsageStats;
use llmsql_types::{Batch, Incomplete, Row, Value};

/// The result of executing one SQL statement.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// The rows (empty for DDL/DML statements).
    pub batch: Batch,
    /// Rows affected by DDL/DML (inserted rows, dropped tables, ...).
    pub rows_affected: usize,
    /// Execution metrics (operator counts, LLM calls by kind, parse drops).
    pub metrics: ExecMetrics,
    /// Model usage attributable to this statement (calls, tokens, cost,
    /// simulated latency).
    pub usage: UsageStats,
    /// The optimized plan, when the statement was a query (EXPLAIN text).
    pub plan: Option<String>,
    /// Wall-clock engine time in milliseconds (excludes simulated model
    /// latency, which is reported in `usage.latency_ms`).
    pub engine_ms: f64,
}

impl QueryResult {
    /// Number of result rows.
    pub fn row_count(&self) -> usize {
        self.batch.len()
    }

    /// Column names of the result.
    pub fn column_names(&self) -> Vec<String> {
        self.batch.column_names()
    }

    /// The result rows.
    pub fn rows(&self) -> &[Row] {
        &self.batch.rows
    }

    /// Convenience: the single scalar value of a 1x1 result.
    pub fn scalar(&self) -> Option<Value> {
        if self.batch.len() == 1 && !self.batch.schema.is_empty() {
            Some(self.batch.rows[0].get(0).clone())
        } else {
            None
        }
    }

    /// Render as an ASCII table.
    pub fn to_ascii_table(&self) -> String {
        self.batch.to_ascii_table()
    }

    /// Total end-to-end latency: engine time plus simulated model latency.
    pub fn total_latency_ms(&self) -> f64 {
        self.engine_ms + self.usage.latency_ms
    }

    /// The graceful-degradation marker, when this result was cut short
    /// (`EngineConfig::with_partial_results`): the triggering fault plus the
    /// rows/calls accounting at the cut. `None` = the result is complete.
    pub fn incomplete(&self) -> Option<&Incomplete> {
        self.metrics.incomplete.as_ref()
    }

    /// True when the rows are a partial (page-aligned prefix) result
    /// delivered under graceful degradation rather than the full answer.
    pub fn is_partial(&self) -> bool {
        self.metrics.incomplete.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_types::{DataType, Field, RelSchema};

    #[test]
    fn scalar_and_counts() {
        let schema = RelSchema::new(vec![Field::new(None, "n", DataType::Int, false)]);
        let r = QueryResult {
            batch: Batch::new(schema, vec![Row::new(vec![Value::Int(7)])]),
            ..QueryResult::default()
        };
        assert_eq!(r.row_count(), 1);
        assert_eq!(r.scalar(), Some(Value::Int(7)));
        assert_eq!(r.column_names(), vec!["n".to_string()]);
        assert!(r.to_ascii_table().contains('7'));
    }

    #[test]
    fn scalar_none_for_multi_row() {
        let schema = RelSchema::new(vec![Field::new(None, "n", DataType::Int, false)]);
        let r = QueryResult {
            batch: Batch::new(
                schema,
                vec![Row::new(vec![Value::Int(1)]), Row::new(vec![Value::Int(2)])],
            ),
            ..QueryResult::default()
        };
        assert_eq!(r.scalar(), None);
    }

    #[test]
    fn latency_sums() {
        let mut r = QueryResult {
            engine_ms: 2.0,
            ..QueryResult::default()
        };
        r.usage.latency_ms = 100.0;
        assert_eq!(r.total_latency_ms(), 102.0);
    }
}
