//! The engine: the public entry point tying parser, planner, executor,
//! relational store and language-model storage together.

use std::sync::Arc;
use std::time::Instant;

use llmsql_exec::{
    eval as eval_expr, execute as execute_plan, CallSlots, ExecContext, ExecMetrics, SharedReactor,
};
use llmsql_llm::prompt::TaskSpec;
use llmsql_llm::{
    parse_pipe_rows, BackendPool, CompletionRequest, KnowledgeBase, LanguageModel, LlmClient,
    PromptCoalescer, SimLlm,
};
use llmsql_plan::{
    bind_select, cost_plan, lint_plan, optimize_traced, schema_from_create, CostParams,
    LogicalPlan, OptimizerOptions, RuleTrace,
};
use llmsql_sql::ast::{InsertStatement, SelectStatement, Statement};
use llmsql_sql::parse_statement;
use llmsql_store::{Catalog, CatalogEntry};
use llmsql_types::{
    Batch, DataType, EngineConfig, Error, ExecutionMode, Field, PromptStrategy, RelSchema, Result,
    Row, Value,
};

use crate::result::QueryResult;

/// The query engine.
///
/// ```
/// use llmsql_core::Engine;
/// use llmsql_types::{EngineConfig, ExecutionMode};
///
/// let mut engine = Engine::new(EngineConfig::default().with_mode(ExecutionMode::Traditional));
/// engine.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)").unwrap();
/// engine.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')").unwrap();
/// let result = engine.execute("SELECT name FROM t WHERE id = 2").unwrap();
/// assert_eq!(result.row_count(), 1);
/// ```
pub struct Engine {
    catalog: Catalog,
    config: EngineConfig,
    client: Option<LlmClient>,
    /// Global LLM-call slot pool shared with other engines/queries (attached
    /// by a cross-query scheduler). `None` means unthrottled dispatch.
    slots: Option<Arc<CallSlots>>,
    /// Deployment-shared dispatch reactor (attached by a scheduler): queries
    /// park their waves on one shared event loop, where completions from
    /// different queries interleave. `None` = private per-wave loops.
    reactor: Option<Arc<SharedReactor>>,
    /// Deployment-scope single-flight table (attached by a scheduler):
    /// identical in-flight prompts across queries coalesce into one physical
    /// call. `None` = per-client dedup only.
    coalescer: Option<Arc<PromptCoalescer>>,
}

impl Engine {
    /// Create an engine with an empty catalog and no model attached.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            catalog: Catalog::new(),
            config,
            client: None,
            slots: None,
            reactor: None,
            coalescer: None,
        }
    }

    /// Create an engine over an existing catalog.
    pub fn with_catalog(catalog: Catalog, config: EngineConfig) -> Self {
        Engine {
            catalog,
            config,
            client: None,
            slots: None,
            reactor: None,
            coalescer: None,
        }
    }

    /// Throttle every LLM dispatch of this engine through a shared
    /// [`CallSlots`] pool: across all queries (and all engines sharing the
    /// pool), at most `pool.capacity()` model requests are in flight at
    /// once. Attached by `llmsql_sched::QueryScheduler`; harmless to set
    /// directly. Throttling delays dispatch only — rows and logical call
    /// counts are unchanged.
    ///
    /// When the engine routes through a `BackendPool`, the pool's hedge
    /// admission gate is wired to this slot pool's non-blocking acquire:
    /// hedges fire only against spare slot capacity and each holds a slot
    /// while in flight.
    pub fn set_call_slots(&mut self, slots: Arc<CallSlots>) {
        self.slots = Some(slots);
        self.wire_hedge_gate();
    }

    /// Point the backend pool's hedge admission gate at the attached slot
    /// pool (no-op without a pool or without slots — hedges are then always
    /// admitted, bounded only by the pool's one-hedge-per-request rule).
    fn wire_hedge_gate(&self) {
        let (Some(slots), Some(pool)) = (
            self.slots.as_ref(),
            self.client.as_ref().and_then(|c| c.pool()),
        ) else {
            return;
        };
        let slots = Arc::clone(slots);
        pool.set_hedge_permit_gate(Some(Arc::new(move || {
            slots
                .try_acquire_owned()
                .map(|guard| Box::new(guard) as Box<dyn std::any::Any + Send>)
        })));
    }

    /// The attached global slot pool, if any.
    pub fn call_slots(&self) -> Option<&Arc<CallSlots>> {
        self.slots.as_ref()
    }

    /// Park this engine's dispatch waves on a deployment-shared
    /// [`SharedReactor`] instead of private per-wave event loops. Attached by
    /// `llmsql_sched::QueryScheduler` so completions from every worker's
    /// queries interleave on one event loop; harmless to set directly. Wave
    /// planning, rows and logical call accounting are unchanged — only where
    /// in-flight completions are parked is.
    pub fn set_shared_reactor(&mut self, reactor: Arc<SharedReactor>) {
        self.reactor = Some(reactor);
    }

    /// The attached shared reactor, if any.
    pub fn shared_reactor(&self) -> Option<&Arc<SharedReactor>> {
        self.reactor.as_ref()
    }

    /// Coalesce this engine's in-flight prompts against a deployment-scope
    /// single-flight table: identical concurrent requests (typically from
    /// different queries sharing the reactor) collapse into one physical call
    /// whose success fans out to every waiter. Attached by
    /// `llmsql_sched::QueryScheduler`; survives a later
    /// [`Engine::attach_model`]. Logical call accounting is unchanged —
    /// followers are charged their logical call but issue no physical one.
    pub fn set_prompt_coalescer(&mut self, coalescer: Arc<PromptCoalescer>) {
        if let Some(client) = &mut self.client {
            client.set_coalescer(Some(Arc::clone(&coalescer)));
        }
        self.coalescer = Some(coalescer);
    }

    /// The attached prompt coalescer, if any.
    pub fn prompt_coalescer(&self) -> Option<&Arc<PromptCoalescer>> {
        self.coalescer.as_ref()
    }

    /// Attach a language model (wrapped in a caching, usage-tracking client).
    ///
    /// With `config.backends` non-empty the model is served through a
    /// [`llmsql_llm::BackendPool`] of deterministic remote-like endpoints
    /// (one per [`llmsql_types::BackendSpec`]) with the configured routing
    /// policy and failover; otherwise it is called directly. Fails when the
    /// backend list is invalid (duplicate or empty names, out-of-range
    /// rates) — the same errors `EngineConfig::validate` reports.
    pub fn attach_model(&mut self, model: Arc<dyn LanguageModel>) -> Result<()> {
        let cached = self.config.enable_prompt_cache;
        self.client = Some(if self.config.backends.is_empty() {
            if cached {
                LlmClient::new(model)
            } else {
                LlmClient::without_cache(model)
            }
        } else {
            let pool = BackendPool::from_specs_with_chaos(
                model,
                &self.config.backends,
                self.config.routing_policy,
                self.config.seed,
                self.config.chaos.clone(),
            )?
            .with_retries(self.config.backend_retries)
            .with_backoff_base_ms(self.config.backend_backoff_ms)
            .with_breaker(
                self.config.breaker_threshold,
                self.config.breaker_cooldown_ms,
            )
            .with_hedging(self.config.hedge_multiplier, self.config.hedge_min_ms);
            LlmClient::from_pool(Arc::new(pool), cached)
        });
        // A scheduler may have attached its slot pool / coalescer before the
        // model was attached; (re)wire both on the fresh client either way.
        self.wire_hedge_gate();
        if let (Some(coalescer), Some(client)) = (&self.coalescer, &mut self.client) {
            client.set_coalescer(Some(Arc::clone(coalescer)));
        }
        Ok(())
    }

    /// Attach the simulated model over the given knowledge base, using the
    /// engine configuration's fidelity, cost model and seed. Fails under the
    /// same conditions as [`Engine::attach_model`].
    pub fn attach_simulator(&mut self, kb: Arc<KnowledgeBase>) -> Result<()> {
        let sim = SimLlm::new(kb, self.config.fidelity, self.config.seed)
            .with_cost_model(self.config.cost_model);
        self.attach_model(Arc::new(sim))
    }

    /// Build a knowledge base mirroring every materialized table of a
    /// catalog. This is how the experiments make "what the model knows" equal
    /// to the ground truth stored in the oracle.
    pub fn knowledge_from_catalog(catalog: &Catalog) -> Result<KnowledgeBase> {
        let mut kb = KnowledgeBase::new();
        for name in catalog.table_names() {
            if let CatalogEntry::Materialized(table) = catalog.get(&name)? {
                kb.add_table(table.schema(), table.scan());
            }
        }
        Ok(kb)
    }

    /// The engine's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable access to the configuration (mode/strategy switches between
    /// experiment runs).
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.config
    }

    /// The attached LLM client, if any.
    pub fn client(&self) -> Option<&LlmClient> {
        self.client.as_ref()
    }

    /// Parse and execute one SQL statement.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        let statement = parse_statement(sql)?;
        self.execute_statement(&statement, Some(sql))
    }

    /// Parse and execute one SQL statement under a per-call deadline (in
    /// addition to any engine-wide `EngineConfig::deadline_ms`; the tighter
    /// of the two wins). The deadline clock starts now: scans check it
    /// between dispatch waves and fail with
    /// [`llmsql_types::ErrorKind::DeadlineExceeded`] (carrying elapsed time
    /// and calls issued) once it passes. Used by the scheduler to grant each
    /// query only its remaining deadline budget after queueing.
    pub fn execute_with_deadline(&self, sql: &str, deadline_ms: f64) -> Result<QueryResult> {
        let statement = parse_statement(sql)?;
        self.execute_statement_inner(&statement, Some(sql), Some(deadline_ms))
    }

    /// Execute an already-parsed statement. `sql_text` (when available) is
    /// used verbatim for full-query prompting.
    pub fn execute_statement(
        &self,
        statement: &Statement,
        sql_text: Option<&str>,
    ) -> Result<QueryResult> {
        self.execute_statement_inner(statement, sql_text, None)
    }

    fn execute_statement_inner(
        &self,
        statement: &Statement,
        sql_text: Option<&str>,
        deadline_override_ms: Option<f64>,
    ) -> Result<QueryResult> {
        self.config.validate()?;
        if let Some(d) = deadline_override_ms {
            if !d.is_finite() || d <= 0.0 {
                return Err(Error::config(
                    "deadline_ms must be finite and greater than zero",
                ));
            }
        }
        // The effective deadline is the tighter of the engine-wide knob and
        // the per-call override.
        let deadline_ms = match (self.config.deadline_ms, deadline_override_ms) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let start = Instant::now();
        let usage_before = self.client.as_ref().map(|c| c.usage()).unwrap_or_default();

        let mut result = match statement {
            Statement::Select(select) => self.execute_select(select, sql_text, deadline_ms)?,
            Statement::CreateTable(create) => {
                let schema = schema_from_create(
                    &create.name,
                    &create.columns,
                    create.virtual_table,
                    create.comment.as_deref(),
                )?;
                if create.if_not_exists && self.catalog.contains(&create.name) {
                    QueryResult::default()
                } else {
                    if create.virtual_table {
                        self.catalog.create_virtual_table(schema)?;
                    } else {
                        self.catalog.create_table(schema)?;
                    }
                    QueryResult {
                        rows_affected: 1,
                        ..QueryResult::default()
                    }
                }
            }
            Statement::DropTable { name, if_exists } => {
                let dropped = self.catalog.drop_table(name, *if_exists)?;
                QueryResult {
                    rows_affected: usize::from(dropped),
                    ..QueryResult::default()
                }
            }
            Statement::Insert(insert) => self.execute_insert(insert)?,
            Statement::Describe { name } => self.describe(name)?,
            Statement::Explain { statement, analyze } => {
                let Statement::Select(select) = statement.as_ref() else {
                    return Err(Error::unsupported(
                        "EXPLAIN supports only SELECT statements",
                    ));
                };
                self.execute_explain(select, *analyze, deadline_ms)?
            }
        };

        result.engine_ms = start.elapsed().as_secs_f64() * 1000.0;
        if let Some(client) = &self.client {
            result.usage = client.usage().since(&usage_before);
        }
        Ok(result)
    }

    /// Bind and optimize a SELECT into a logical plan.
    pub fn plan_select(&self, select: &SelectStatement) -> Result<LogicalPlan> {
        Ok(self.plan_select_traced(select)?.0)
    }

    /// Bind and optimize a SELECT, also reporting which rewrite rules fired
    /// (`EXPLAIN` prints the trace).
    pub fn plan_select_traced(&self, select: &SelectStatement) -> Result<(LogicalPlan, RuleTrace)> {
        let bound = bind_select(&self.catalog, select)?;
        let options = if self.config.enable_optimizer {
            OptimizerOptions {
                predicate_pushdown: self.config.enable_predicate_pushdown,
                projection_pruning: self.config.enable_projection_pruning,
                ..OptimizerOptions::default()
            }
        } else {
            OptimizerOptions::disabled()
        };
        Ok(optimize_traced(bound, &options))
    }

    /// Cost-model parameters for a plan: engine config plus cardinality
    /// hints for every scanned relation — from the attached model
    /// (`LanguageModel::relation_cardinality`) for virtual tables, from the
    /// stored row count for materialized ones.
    pub fn cost_params_for(&self, plan: &LogicalPlan) -> CostParams {
        let mut params = CostParams::from_config(&self.config);
        for table in plan.scanned_tables() {
            let hint = self
                .client
                .as_ref()
                .and_then(|c| c.relation_cardinality(&table))
                .or_else(|| match self.catalog.get(&table) {
                    Ok(CatalogEntry::Materialized(t)) => Some(t.row_count() as u64),
                    _ => None,
                });
            if let Some(rows) = hint {
                params = params.with_hint(table, rows);
            }
        }
        params
    }

    /// `EXPLAIN [ANALYZE]`: statically analyze (and for ANALYZE also run)
    /// the query, returning the annotated operator tree as rows. The text
    /// carries per-operator estimated rows/calls/USD/latency, the fired-rule
    /// trace, plan lints, and — for ANALYZE — the executor's actual rows,
    /// calls and per-operator wall time for drift comparison.
    fn execute_explain(
        &self,
        select: &SelectStatement,
        analyze: bool,
        deadline_ms: Option<f64>,
    ) -> Result<QueryResult> {
        let (plan, trace) = self.plan_select_traced(select)?;
        // In LlmOnly mode every scan hits the model regardless of the
        // schema's virtual flag; mark the plan so cost estimates and lints
        // describe the scans the executor will actually run.
        let plan = if self.config.mode == ExecutionMode::LlmOnly {
            plan.with_scans_marked_virtual()
        } else {
            plan
        };
        let params = self.cost_params_for(&plan);
        let cost = cost_plan(&plan, &params);
        let diagnostics = lint_plan(&plan, &params, self.config.cost_budget_usd);
        // ANALYZE runs the plan through the standard operator path (even
        // under the one-shot full-query strategy, which has no per-operator
        // story to report) and keeps its metrics.
        let metrics = if analyze {
            let mut config = self.config.clone();
            config.deadline_ms = deadline_ms;
            let mut ctx = ExecContext::new(self.catalog.clone(), self.client.clone(), config);
            if let Some(slots) = &self.slots {
                ctx = ctx.with_slots(Arc::clone(slots));
            }
            if let Some(reactor) = &self.reactor {
                ctx = ctx.with_reactor(Arc::clone(reactor));
            }
            execute_plan(&ctx, &plan)?;
            Some(ctx.metrics.snapshot())
        } else {
            None
        };
        let text =
            crate::explain::render_explain(&plan, &cost, &trace, &diagnostics, metrics.as_ref());
        let schema = RelSchema::new(vec![Field::new(None, "plan", DataType::Text, false)]);
        let rows = text
            .lines()
            .map(|l| Row::new(vec![Value::Text(l.to_string())]))
            .collect();
        Ok(QueryResult {
            batch: Batch::new(schema, rows),
            plan: Some(text),
            metrics: metrics.unwrap_or_default(),
            ..QueryResult::default()
        })
    }

    fn execute_select(
        &self,
        select: &SelectStatement,
        sql_text: Option<&str>,
        deadline_ms: Option<f64>,
    ) -> Result<QueryResult> {
        let plan = self.plan_select(select)?;

        // One-shot whole-query prompting.
        if self.config.mode == ExecutionMode::LlmOnly
            && self.config.strategy == PromptStrategy::FullQuery
            && !plan.scanned_tables().is_empty()
        {
            return self.execute_full_query(select, &plan, sql_text, deadline_ms);
        }

        let mut config = self.config.clone();
        config.deadline_ms = deadline_ms;
        let mut ctx = ExecContext::new(self.catalog.clone(), self.client.clone(), config);
        if let Some(slots) = &self.slots {
            ctx = ctx.with_slots(Arc::clone(slots));
        }
        if let Some(reactor) = &self.reactor {
            ctx = ctx.with_reactor(Arc::clone(reactor));
        }
        let batch = execute_plan(&ctx, &plan)?;
        Ok(QueryResult {
            metrics: ctx.metrics.snapshot(),
            plan: Some(plan.explain()),
            batch,
            ..QueryResult::default()
        })
    }

    /// Send the entire SQL statement as a single prompt and parse the
    /// completion as the result table.
    fn execute_full_query(
        &self,
        select: &SelectStatement,
        plan: &LogicalPlan,
        sql_text: Option<&str>,
        deadline_ms: Option<f64>,
    ) -> Result<QueryResult> {
        let started = Instant::now();
        let client = self.client.as_ref().ok_or_else(|| {
            Error::execution("full-query prompting requires an attached language model")
        })?;
        let schema = plan.schema();
        let sql = match sql_text {
            Some(text) => text.to_string(),
            None => Statement::Select(Box::new(select.clone())).to_string(),
        };
        let task = TaskSpec::FullQuery {
            sql,
            columns: schema.names(),
        };
        // Use the first scanned table's schema as prompt context.
        let context_schema = plan
            .scanned_tables()
            .first()
            .and_then(|t| self.catalog.schema_of(t).ok());
        let prompt = task.to_prompt(context_schema.as_ref());
        let backend_baseline = client.backend_stats();
        // The one-shot path bypasses ExecContext, so it gates its global
        // call slot (when a scheduler attached a pool) directly; a cached
        // answer takes no slot at all.
        let mut slot_wait_ms = None;
        let response = client.complete_gated(&CompletionRequest::new(prompt), || {
            self.slots.as_ref().map(|s| {
                let (guard, waited_ms) = s.acquire();
                slot_wait_ms = Some(waited_ms);
                guard
            })
        })?;
        // One-shot prompting has no between-wave checkpoints, so the
        // deadline is enforced on the completion itself: a response that
        // lands past the budget fails like a scan wave would, with the
        // partial accounting in the message.
        if let Some(deadline_ms) = deadline_ms {
            let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
            if elapsed_ms > deadline_ms {
                return Err(Error::deadline_exceeded(format!(
                    "query exceeded its {deadline_ms:.0}ms deadline after {elapsed_ms:.1}ms \
                     with 1 LLM call(s) issued"
                )));
            }
        }

        let types: Vec<DataType> = schema.fields.iter().map(|f| f.data_type).collect();
        let parsed = parse_pipe_rows(&response.text, &types);

        let mut metrics = ExecMetrics::default();
        metrics.record_llm_call(task.kind());
        if let Some(waited_ms) = slot_wait_ms {
            metrics.slot_waits = 1;
            metrics.slot_wait_ms = waited_ms;
        }
        metrics.dropped_lines = parsed.dropped_lines as u64;
        metrics.rows_from_llm = parsed.rows.len() as u64;
        metrics.rows_output = parsed.rows.len() as u64;
        // Multi-backend deployments: this one prompt may have failed over /
        // retried; surface the physical per-backend deltas like plan
        // execution does.
        if let (Some(before), Some(after)) = (backend_baseline, client.backend_stats()) {
            for current in &after {
                let base = before.iter().find(|b| b.id == current.id);
                let (calls, errors, latency) = match base {
                    Some(b) => (
                        current.calls.saturating_sub(b.calls),
                        current.errors.saturating_sub(b.errors),
                        (current.latency_ms - b.latency_ms).max(0.0),
                    ),
                    None => (current.calls, current.errors, current.latency_ms),
                };
                metrics.backend_calls.insert(current.id.clone(), calls);
                metrics.backend_errors.insert(current.id.clone(), errors);
                metrics
                    .backend_latency_ms
                    .insert(current.id.clone(), latency);
            }
        }

        let mut rows = parsed.rows;
        for row in &mut rows {
            row.resize(schema.len());
        }

        Ok(QueryResult {
            batch: Batch::new(schema, rows),
            metrics,
            plan: Some(plan.explain()),
            ..QueryResult::default()
        })
    }

    fn execute_insert(&self, insert: &InsertStatement) -> Result<QueryResult> {
        let table = self.catalog.table(&insert.table)?;
        let schema = table.schema();
        let mut rows = Vec::with_capacity(insert.values.len());
        for value_exprs in &insert.values {
            let mut row = vec![Value::Null; schema.arity()];
            if insert.columns.is_empty() {
                if value_exprs.len() != schema.arity() {
                    return Err(Error::execution(format!(
                        "INSERT provides {} values but table '{}' has {} columns",
                        value_exprs.len(),
                        schema.name,
                        schema.arity()
                    )));
                }
                for (i, expr) in value_exprs.iter().enumerate() {
                    row[i] = self.eval_constant(expr)?;
                }
            } else {
                if value_exprs.len() != insert.columns.len() {
                    return Err(Error::execution(
                        "INSERT column list and VALUES row have different lengths",
                    ));
                }
                for (name, expr) in insert.columns.iter().zip(value_exprs) {
                    let idx = schema.index_of(name).ok_or_else(|| {
                        Error::binding(format!(
                            "column '{name}' not found in table '{}'",
                            schema.name
                        ))
                    })?;
                    row[idx] = self.eval_constant(expr)?;
                }
            }
            rows.push(Row::new(row));
        }
        let inserted = table.insert_many(rows)?;
        Ok(QueryResult {
            rows_affected: inserted,
            ..QueryResult::default()
        })
    }

    fn eval_constant(&self, expr: &llmsql_sql::ast::Expr) -> Result<Value> {
        // Keep the binder's structured error (kind + message): "not a
        // constant" is a binding failure, and the original message names the
        // offending column reference.
        let bound = llmsql_plan::bind_expr(expr, &RelSchema::empty()).map_err(|e| {
            Error::new(
                e.kind,
                format!("INSERT values must be constant expressions: {}", e.message),
            )
        })?;
        eval_expr(&bound, &Row::empty())
    }

    fn describe(&self, name: &str) -> Result<QueryResult> {
        let schema = self.catalog.schema_of(name)?;
        let rel = RelSchema::new(vec![
            Field::new(None, "column", DataType::Text, false),
            Field::new(None, "type", DataType::Text, false),
            Field::new(None, "nullable", DataType::Bool, false),
            Field::new(None, "primary_key", DataType::Bool, false),
            Field::new(None, "description", DataType::Text, true),
        ]);
        let rows = schema
            .columns
            .iter()
            .map(|c| {
                Row::new(vec![
                    Value::Text(c.name.clone()),
                    Value::Text(c.data_type.to_string()),
                    Value::Bool(c.nullable),
                    Value::Bool(c.primary_key),
                    c.description
                        .clone()
                        .map(Value::Text)
                        .unwrap_or(Value::Null),
                ])
            })
            .collect();
        Ok(QueryResult {
            batch: Batch::new(rel, rows),
            ..QueryResult::default()
        })
    }

    /// Execute a script of semicolon-separated statements, returning the last
    /// result. A failing statement aborts the script; the error keeps its
    /// structured kind and gains the 1-based statement ordinal so callers can
    /// locate the failure inside the script.
    pub fn execute_script(&self, sql: &str) -> Result<QueryResult> {
        let statements = llmsql_sql::parse_script(sql)?;
        let mut last = QueryResult::default();
        for (index, stmt) in statements.iter().enumerate() {
            last = self.execute_statement(stmt, None).map_err(|e| {
                let mut contextual = Error::new(
                    e.kind,
                    format!(
                        "statement {} of {}: {}",
                        index + 1,
                        statements.len(),
                        e.message
                    ),
                );
                contextual.offset = e.offset;
                contextual
            })?;
        }
        Ok(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_types::LlmFidelity;

    fn traditional_engine() -> Engine {
        let engine = Engine::new(EngineConfig::default().with_mode(ExecutionMode::Traditional));
        engine
            .execute_script(
                "CREATE TABLE countries (\
                   name TEXT PRIMARY KEY, region TEXT, population INTEGER);\
                 INSERT INTO countries VALUES \
                   ('France', 'Europe', 68), ('Germany', 'Europe', 84), ('Japan', 'Asia', 125);",
            )
            .unwrap();
        engine
    }

    fn llm_engine(fidelity: LlmFidelity, strategy: PromptStrategy) -> Engine {
        let oracle = traditional_engine();
        let kb = Engine::knowledge_from_catalog(oracle.catalog()).unwrap();
        let mut engine = Engine::with_catalog(
            oracle.catalog().deep_clone().unwrap(),
            EngineConfig::default()
                .with_mode(ExecutionMode::LlmOnly)
                .with_strategy(strategy)
                .with_fidelity(fidelity),
        );
        engine.attach_simulator(kb.into_shared()).unwrap();
        engine
    }

    #[test]
    fn ddl_dml_and_query() {
        let engine = traditional_engine();
        let r = engine
            .execute("SELECT name FROM countries WHERE population > 80 ORDER BY name")
            .unwrap();
        assert_eq!(r.row_count(), 2);
        assert_eq!(r.rows()[0].get(0), &Value::Text("Germany".into()));
        assert!(r.plan.is_some());
        assert_eq!(r.metrics.llm_calls(), 0);
    }

    #[test]
    fn insert_with_column_list_and_nulls() {
        let engine = traditional_engine();
        let r = engine
            .execute("INSERT INTO countries (name, population) VALUES ('Peru', 34)")
            .unwrap();
        assert_eq!(r.rows_affected, 1);
        let q = engine
            .execute("SELECT region FROM countries WHERE name = 'Peru'")
            .unwrap();
        assert!(q.rows()[0].get(0).is_null());
    }

    #[test]
    fn insert_arity_mismatch_errors() {
        let engine = traditional_engine();
        assert!(engine.execute("INSERT INTO countries VALUES (1)").is_err());
        assert!(engine
            .execute("INSERT INTO countries (name) VALUES ('X', 'Y')")
            .is_err());
    }

    #[test]
    fn create_if_not_exists_and_drop() {
        let engine = traditional_engine();
        assert!(engine.execute("CREATE TABLE countries (x INT)").is_err());
        engine
            .execute("CREATE TABLE IF NOT EXISTS countries (x INT)")
            .unwrap();
        let r = engine.execute("DROP TABLE countries").unwrap();
        assert_eq!(r.rows_affected, 1);
        engine.execute("DROP TABLE IF EXISTS countries").unwrap();
        assert!(engine.execute("DROP TABLE countries").is_err());
    }

    #[test]
    fn describe_and_explain() {
        let engine = traditional_engine();
        let d = engine.execute("DESCRIBE countries").unwrap();
        assert_eq!(d.row_count(), 3);
        assert_eq!(d.column_names()[0], "column");
        let e = engine
            .execute("EXPLAIN SELECT name FROM countries WHERE population > 1")
            .unwrap();
        assert!(e.plan.as_ref().unwrap().contains("Scan countries"));
        assert!(e.row_count() >= 2);
    }

    #[test]
    fn scalar_helper() {
        let engine = traditional_engine();
        let r = engine.execute("SELECT COUNT(*) FROM countries").unwrap();
        assert_eq!(r.scalar(), Some(Value::Int(3)));
    }

    #[test]
    fn llm_only_perfect_matches_traditional() {
        let oracle = traditional_engine();
        let subject = llm_engine(LlmFidelity::perfect(), PromptStrategy::BatchedRows);
        for sql in [
            "SELECT name, population FROM countries WHERE population > 70",
            "SELECT region, COUNT(*) FROM countries GROUP BY region",
            "SELECT name FROM countries ORDER BY population DESC LIMIT 2",
        ] {
            let expected = oracle.execute(sql).unwrap();
            let actual = subject.execute(sql).unwrap();
            let score = crate::eval::score_batches(
                &actual.batch,
                &expected.batch,
                &crate::eval::EvalOptions::exact(),
            );
            assert!(score.exact, "query {sql} diverged: {score:?}");
            assert!(actual.metrics.llm_calls() > 0);
            assert!(actual.usage.calls > 0);
        }
    }

    #[test]
    fn full_query_strategy_uses_one_call() {
        let subject = llm_engine(LlmFidelity::perfect(), PromptStrategy::FullQuery);
        let r = subject
            .execute("SELECT name FROM countries WHERE region = 'Europe'")
            .unwrap();
        assert_eq!(r.metrics.llm_calls(), 1);
        assert_eq!(r.metrics.llm_calls_by_kind["full_query"], 1);
        assert_eq!(r.row_count(), 2);
    }

    #[test]
    fn weak_model_degrades_but_does_not_crash() {
        let subject = llm_engine(LlmFidelity::weak(), PromptStrategy::BatchedRows);
        let r = subject
            .execute("SELECT name, population FROM countries")
            .unwrap();
        assert!(r.row_count() <= 4); // may fabricate a little, may forget a lot
    }

    #[test]
    fn traditional_mode_without_model_is_fine_but_llm_mode_needs_one() {
        let engine = Engine::new(EngineConfig::default().with_mode(ExecutionMode::LlmOnly));
        engine
            .execute("CREATE VIRTUAL TABLE ghosts (name TEXT PRIMARY KEY)")
            .unwrap();
        assert!(engine.execute("SELECT * FROM ghosts").is_err());
    }

    #[test]
    fn usage_accounting_per_query() {
        let subject = llm_engine(LlmFidelity::perfect(), PromptStrategy::TupleAtATime);
        let r1 = subject.execute("SELECT name FROM countries").unwrap();
        let r2 = subject.execute("SELECT region FROM countries").unwrap();
        assert!(r1.usage.calls > 0);
        // the second query's usage is its own delta, not cumulative
        assert!(r2.usage.calls > 0);
        assert!(r2.usage.calls < r1.usage.calls + r2.usage.calls);
        assert!(r1.total_latency_ms() > 0.0);
    }

    #[test]
    fn execute_script_returns_last_result() {
        let engine = Engine::new(EngineConfig::default().with_mode(ExecutionMode::Traditional));
        let r = engine
            .execute_script("CREATE TABLE t (a INT PRIMARY KEY); INSERT INTO t VALUES (1), (2); SELECT COUNT(*) FROM t")
            .unwrap();
        assert_eq!(r.scalar(), Some(Value::Int(2)));
    }

    #[test]
    fn execute_script_errors_are_structured_and_located() {
        let engine = Engine::new(EngineConfig::default().with_mode(ExecutionMode::Traditional));
        let err = engine
            .execute_script(
                "CREATE TABLE t (a INT PRIMARY KEY); SELECT nope FROM t; SELECT COUNT(*) FROM t",
            )
            .unwrap_err();
        assert_eq!(err.kind, llmsql_types::ErrorKind::Binding);
        assert!(
            err.message.starts_with("statement 2 of 3:"),
            "missing location context: {err}"
        );
    }

    #[test]
    fn insert_constant_errors_keep_the_binding_cause() {
        let engine = traditional_engine();
        let err = engine
            .execute("INSERT INTO countries VALUES (population, 'x', 1)")
            .unwrap_err();
        assert_eq!(err.kind, llmsql_types::ErrorKind::Binding);
        assert!(
            err.message.contains("constant"),
            "missing constant-expression context: {err}"
        );
    }

    #[test]
    fn full_query_strategy_honors_deadlines() {
        // The one-shot path has no wave checkpoints; the deadline is
        // enforced on the completion itself.
        let oracle = traditional_engine();
        let kb = Engine::knowledge_from_catalog(oracle.catalog()).unwrap();
        let mut engine = Engine::with_catalog(
            oracle.catalog().deep_clone().unwrap(),
            EngineConfig::default()
                .with_mode(ExecutionMode::LlmOnly)
                .with_strategy(PromptStrategy::FullQuery)
                .with_fidelity(LlmFidelity::perfect()),
        );
        let sim = SimLlm::new(kb.into_shared(), LlmFidelity::perfect(), 42)
            .with_simulated_latency_ms(30.0);
        engine.attach_model(Arc::new(sim)).unwrap();
        let sql = "SELECT name FROM countries WHERE region = 'Europe'";
        let err = engine.execute_with_deadline(sql, 5.0).unwrap_err();
        assert_eq!(err.kind, llmsql_types::ErrorKind::DeadlineExceeded);
        assert!(err.message.contains("1 LLM call(s) issued"), "{err}");
        // A generous deadline is transparent.
        let ok = engine.execute_with_deadline(sql, 60_000.0).unwrap();
        assert_eq!(ok.row_count(), 2);
    }

    #[test]
    fn execute_with_deadline_enforces_and_is_transparent_when_unhit() {
        let engine = llm_engine(LlmFidelity::perfect(), PromptStrategy::BatchedRows);
        let sql = "SELECT name, population FROM countries";
        let expected = engine.execute(sql).unwrap();

        // A generous per-call deadline changes nothing.
        let relaxed = engine.execute_with_deadline(sql, 60_000.0).unwrap();
        assert_eq!(expected.rows(), relaxed.rows());
        assert_eq!(expected.metrics.llm_calls(), relaxed.metrics.llm_calls());

        // Invalid budgets are config errors.
        assert!(engine.execute_with_deadline(sql, 0.0).is_err());
        assert!(engine.execute_with_deadline(sql, f64::NAN).is_err());

        // An engine-wide deadline combines with the per-call one (tighter
        // wins): a sub-microsecond budget trips between waves.
        let mut strict = llm_engine(LlmFidelity::perfect(), PromptStrategy::BatchedRows);
        strict.config_mut().deadline_ms = Some(1e-4);
        let err = strict.execute(sql).unwrap_err();
        assert_eq!(err.kind, llmsql_types::ErrorKind::DeadlineExceeded);
        assert!(err.message.contains("deadline"), "{err}");
    }

    #[test]
    fn attached_slot_pool_throttles_without_changing_results() {
        let free = llm_engine(LlmFidelity::perfect(), PromptStrategy::BatchedRows);
        let sql = "SELECT name, population FROM countries ORDER BY name";
        let expected = free.execute(sql).unwrap();

        let mut throttled = llm_engine(LlmFidelity::perfect(), PromptStrategy::BatchedRows);
        throttled.config_mut().parallelism = 4;
        let slots = Arc::new(CallSlots::new(1));
        throttled.set_call_slots(Arc::clone(&slots));
        assert!(throttled.call_slots().is_some());
        let got = throttled.execute(sql).unwrap();
        assert_eq!(expected.rows(), got.rows());
        assert_eq!(expected.metrics.llm_calls(), got.metrics.llm_calls());
        assert_eq!(got.metrics.slot_waits, got.metrics.llm_calls());
        assert!(slots.peak_in_use() <= 1);
    }
}
