//! Rendering for `EXPLAIN` / `EXPLAIN ANALYZE`.
//!
//! Stitches the three static-analysis layers onto the operator tree: the
//! optimizer's fired-rule trace, the per-operator cost estimates
//! (`llmsql_plan::cost`), and the plan lints (`llmsql_plan::lint`). For
//! `EXPLAIN ANALYZE` the query actually runs first and each line gains the
//! executor's recorded actuals, so estimated-vs-actual drift is visible per
//! operator.
//!
//! Estimates and actuals are joined on the node's pre-order path (`"0"`,
//! `"0.0"`, ...): `LogicalPlan::explain` emits nodes in pre-order,
//! `cost_plan` produces its `nodes` vector in the same order, and the
//! executor keys `ExecMetrics::op_stats` by the same scheme.

use llmsql_exec::ExecMetrics;
use llmsql_plan::{LogicalPlan, PlanCost, PlanDiagnostic, RuleTrace};

/// Render the full `EXPLAIN` (or, with `actuals`, `EXPLAIN ANALYZE`) text:
/// the annotated operator tree followed by the rule trace, plan-wide totals,
/// and any lint diagnostics.
pub fn render_explain(
    plan: &LogicalPlan,
    cost: &PlanCost,
    trace: &RuleTrace,
    diagnostics: &[PlanDiagnostic],
    actuals: Option<&ExecMetrics>,
) -> String {
    let mut out = String::new();
    let tree = plan.explain();
    for (line, node) in tree.lines().zip(&cost.nodes) {
        out.push_str(line);
        out.push_str(&format!("  [est rows≈{:.0}", node.cost.rows_out));
        if node.cost.llm_calls > 0 {
            out.push_str(&format!(
                " calls={} usd=${:.4} latency≈{:.0}ms",
                node.cost.llm_calls, node.cost.usd, node.cost.latency_ms
            ));
        }
        out.push(']');
        if let Some(metrics) = actuals {
            if let Some(s) = metrics.op_stats.get(&node.path) {
                out.push_str(&format!(
                    "  [act rows={} calls={} wall={:.2}ms]",
                    s.rows_out, s.llm_calls, s.wall_ms
                ));
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("rules fired: {trace}\n"));
    out.push_str(&format!(
        "estimated: {} LLM calls, ${:.4}, ≈{:.0}ms model latency\n",
        cost.total.llm_calls, cost.total.usd, cost.total.latency_ms
    ));
    if let Some(metrics) = actuals {
        out.push_str(&format!(
            "actual: {} LLM calls, {} rows from llm, {} rows out\n",
            metrics.llm_calls(),
            metrics.rows_from_llm,
            metrics.rows_output
        ));
    }
    for d in diagnostics {
        out.push_str(&format!("{d}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_plan::{cost_plan, lint_plan, CostParams};

    use crate::engine::Engine;
    use llmsql_types::{EngineConfig, ExecutionMode};

    fn plan_for(sql: &str) -> (Engine, LogicalPlan, RuleTrace) {
        let engine = Engine::new(EngineConfig::default().with_mode(ExecutionMode::Traditional));
        engine
            .execute_script(
                "CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER); \
                 INSERT INTO t VALUES (1, 10), (2, 20)",
            )
            .unwrap();
        let stmt = llmsql_sql::parse_statement(sql).unwrap();
        let llmsql_sql::Statement::Select(select) = stmt else {
            panic!()
        };
        let (plan, trace) = engine.plan_select_traced(&select).unwrap();
        (engine, plan, trace)
    }

    #[test]
    fn every_tree_line_carries_an_estimate() {
        let (_, plan, trace) = plan_for("SELECT x FROM t WHERE x > 5 LIMIT 1");
        let params = CostParams::default();
        let cost = cost_plan(&plan, &params);
        let text = render_explain(&plan, &cost, &trace, &[], None);
        let tree_lines = plan.explain().lines().count();
        let annotated = text.lines().filter(|l| l.contains("[est rows≈")).count();
        assert_eq!(annotated, tree_lines);
        assert!(text.contains("rules fired:"));
        assert!(text.contains("estimated:"));
        assert!(!text.contains("actual:"));
    }

    #[test]
    fn diagnostics_are_appended() {
        let (_, plan, trace) = plan_for("SELECT x FROM t");
        let params = CostParams::default();
        let cost = cost_plan(&plan, &params);
        let diags = lint_plan(&plan, &params, Some(0.0000001));
        let text = render_explain(&plan, &cost, &trace, &diags, None);
        for d in &diags {
            assert!(text.contains(d.rule), "missing {}: {text}", d.rule);
        }
    }
}
