#![forbid(unsafe_code)]
//! # llmsql-core
//!
//! The public API of the `llmsql` engine — the reproduction of
//! *"Large Language Models as Storage for SQL Querying"* (ICDE 2024).
//!
//! An [`Engine`] parses SQL, plans it, and executes it in one of three modes:
//!
//! * **Traditional** — against the relational store (`llmsql-store`); this is
//!   the baseline and the ground-truth oracle.
//! * **LlmOnly** — every base relation is virtual and materialized by
//!   prompting the language model (`llmsql-llm`), using a configurable
//!   [`PromptStrategy`].
//! * **Hybrid** — stored tables with gaps are completed from the model at
//!   query time.
//!
//! The [`eval`] module scores LLM-backed answers against the oracle
//! (precision / recall / F1), which is the measurement underlying every
//! accuracy experiment in `EXPERIMENTS.md`.
//!
//! ```
//! use llmsql_core::{Engine, eval::{score_batches, EvalOptions}};
//! use llmsql_types::{EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy};
//!
//! // Ground truth lives in a traditional engine.
//! let oracle = Engine::new(EngineConfig::default().with_mode(ExecutionMode::Traditional));
//! oracle.execute_script(
//!     "CREATE TABLE countries (name TEXT PRIMARY KEY, region TEXT, population INTEGER);
//!      INSERT INTO countries VALUES ('France','Europe',68), ('Japan','Asia',125);").unwrap();
//!
//! // The subject engine answers the same SQL from the (simulated) model.
//! let kb = Engine::knowledge_from_catalog(oracle.catalog()).unwrap();
//! let mut subject = Engine::with_catalog(
//!     oracle.catalog().deep_clone().unwrap(),
//!     EngineConfig::default()
//!         .with_mode(ExecutionMode::LlmOnly)
//!         .with_strategy(PromptStrategy::BatchedRows)
//!         .with_fidelity(LlmFidelity::perfect()));
//! subject.attach_simulator(kb.into_shared());
//!
//! let sql = "SELECT name FROM countries WHERE population > 100";
//! let expected = oracle.execute(sql).unwrap();
//! let actual = subject.execute(sql).unwrap();
//! let score = score_batches(&actual.batch, &expected.batch, &EvalOptions::exact());
//! assert!(score.exact);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod eval;
pub mod explain;
pub mod result;

pub use engine::Engine;
pub use eval::{score_batches, score_rows, EvalOptions, ResultScore, SuiteScore};
pub use explain::render_explain;
pub use result::QueryResult;

// Re-export the configuration types users need to drive the engine.
pub use llmsql_types::{
    EngineConfig, ExecutionMode, LlmCostModel, LlmFidelity, PromptStrategy, Value,
};
