//! The scheduler runtime: admission queue, worker pool, policy dispatch and
//! aggregate statistics.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use llmsql_core::Engine;
use llmsql_exec::{CallSlots, SharedReactor};
use llmsql_llm::PromptCoalescer;
use llmsql_types::{AtomicEwmaMs, Error, Priority, Result, SchedConfig, SchedPolicy, TenantId};

use crate::ratelimit::TenantLimiter;
use crate::ticket::{QueryOutcome, QueryTicket, TicketState};

/// One admitted, not-yet-running query.
struct Job {
    sql: String,
    tenant: TenantId,
    priority: Priority,
    /// Admission ordinal: the FIFO key, and the tiebreaker everywhere else.
    seq: u64,
    submitted: Instant,
    /// Per-query deadline in milliseconds from submission, when one was
    /// given ([`QueryScheduler::submit_with_deadline`]).
    deadline_ms: Option<f64>,
    ticket: Arc<TicketState>,
}

/// Mutable queue state, guarded by one mutex (admission and dispatch are
/// control-plane operations; queries execute outside the lock).
struct QueueState {
    /// Admitted jobs in admission order (`seq` ascending).
    jobs: VecDeque<Job>,
    /// Queued (not running) jobs per tenant, for the per-tenant cap.
    queued_per_tenant: BTreeMap<TenantId, usize>,
    /// Per-tenant deficit counters: LLM calls completed so far. Weighted
    /// fair share serves the tenant minimizing `charged / weight`.
    charges: BTreeMap<TenantId, u64>,
    next_seq: u64,
    paused: bool,
    shutdown: bool,
}

struct SchedCore {
    engine: Engine,
    slots: Arc<CallSlots>,
    config: SchedConfig,
    state: Mutex<QueueState>,
    work: Condvar,
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    finish_seq: AtomicU64,
    /// Submissions rejected at admission because the projected queue wait
    /// alone already exceeded their deadline.
    deadline_rejected: AtomicU64,
    /// Admitted queries cancelled unexecuted because their deadline passed
    /// while they queued.
    deadline_expired: AtomicU64,
    /// Submissions shed at admission because the deployment was past a
    /// load-shedding watermark and a higher-priority query was queued.
    shed: AtomicU64,
    /// Submissions rejected by a per-tenant token-bucket rate limit.
    throttled: AtomicU64,
    /// Logical LLM calls served by deployment-scope prompt coalescing across
    /// all completed queries (see [`SchedStats::coalesced_calls`]).
    coalesced_calls: AtomicU64,
    /// Per-tuple prompts that rode a packed multi-row request across all
    /// completed queries (see [`SchedStats::batched_rows`]).
    batched_rows: AtomicU64,
    /// EWMA of completed-query run time, milliseconds. Drives the
    /// projected-queue-wait estimate at admission.
    run_ewma: AtomicEwmaMs,
    /// The scheduler's millisecond clock origin: token buckets run on
    /// `epoch.elapsed()` so every bucket shares one monotone clock.
    epoch: Instant,
    /// Lazily-built per-tenant rate limiters (only tenants with a configured
    /// limit ever get an entry).
    limiters: Mutex<BTreeMap<TenantId, Arc<TenantLimiter>>>,
}

impl SchedCore {
    /// Milliseconds since the scheduler was built (the token-bucket clock).
    fn now_ms(&self) -> u64 {
        (self.epoch.elapsed().as_secs_f64() * 1000.0) as u64
    }

    /// The rate limiter for `tenant`, if the configuration gives it one.
    fn limiter_for(&self, tenant: &str) -> Option<Arc<TenantLimiter>> {
        let limit = *self.config.rate_limit_of(tenant)?;
        let mut limiters = self.limiters.lock().unwrap_or_else(|e| e.into_inner());
        Some(Arc::clone(
            limiters
                .entry(tenant.to_string())
                .or_insert_with(|| Arc::new(TenantLimiter::new(limit, self.now_ms()))),
        ))
    }

    /// Projected time to drain a backlog of `queued` jobs: run-time EWMA ×
    /// depth over worker count. `None` until the first query completes.
    fn projected_backlog_wait_ms(&self, queued: usize) -> Option<f64> {
        self.run_ewma
            .get()
            .map(|ewma| ewma * (queued as f64 / self.config.workers as f64))
    }

    /// Retry-after hint for a rejection issued with `queued` jobs in the
    /// queue, from the backlog projection; 1ms floor when no EWMA exists yet.
    fn backlog_retry_hint_ms(&self, queued: usize) -> u64 {
        self.projected_backlog_wait_ms(queued)
            .map(|wait| wait.ceil().max(1.0) as u64)
            .unwrap_or(1)
    }
}

/// Aggregate scheduler statistics (see [`QueryScheduler::stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SchedStats {
    /// Queries admitted over the scheduler's lifetime.
    pub submitted: u64,
    /// Queries rejected at admission (queue or tenant cap).
    pub rejected: u64,
    /// Queries completed (successfully or with an error).
    pub completed: u64,
    /// Queries currently queued (admitted, not yet running).
    pub queued: usize,
    /// The configured global LLM-call slot count.
    pub slot_capacity: usize,
    /// Highest number of LLM requests in flight at once across all queries —
    /// never exceeds `slot_capacity`.
    pub peak_slots_in_use: u64,
    /// Total time all queries spent blocked waiting for call slots, ms.
    pub total_slot_wait_ms: f64,
    /// Per-tenant deficit counters: LLM calls completed per tenant. Under
    /// [`SchedPolicy::WeightedFair`] with sustained backlog these converge
    /// to the configured weight ratios.
    pub tenant_calls: BTreeMap<TenantId, u64>,
    /// Submissions rejected at admission because the projected queue wait
    /// alone already exceeded their deadline (also counted in `rejected`).
    pub deadline_rejected: u64,
    /// Admitted queries cancelled unexecuted because their deadline passed
    /// while they queued (also counted in `completed` — their tickets
    /// resolve with [`llmsql_types::ErrorKind::DeadlineExceeded`]).
    pub deadline_expired: u64,
    /// Submissions shed at admission — the deployment was past a
    /// load-shedding watermark ([`llmsql_types::SchedConfig`]'s
    /// `shed_queue_watermark` / `shed_wait_watermark_ms`) and a
    /// higher-priority query was queued. Also counted in `rejected`; the
    /// rejection is [`llmsql_types::ErrorKind::Overloaded`] with a
    /// `retry_after_ms` from the backlog projection.
    pub shed: u64,
    /// Submissions rejected by a per-tenant token-bucket rate limit (also
    /// counted in `rejected`; same `Overloaded { retry_after_ms }` shape).
    pub throttled: u64,
    /// Logical LLM calls served by the deployment-scope prompt coalescer
    /// without a physical request: an identical call from another query (or
    /// wave) was already in flight, and this one rode along as a follower.
    /// Each such call is still charged to its query's logical call budget.
    pub coalesced_calls: u64,
    /// Per-tuple prompts that were packed into a multi-row request
    /// (`EngineConfig::batch_rows_per_call`) instead of dispatched
    /// individually. Single-member packs are not counted.
    pub batched_rows: u64,
}

/// The cross-query scheduler. See the crate docs for the model.
///
/// Owns the engine it schedules onto and a worker-thread pool. Dropping the
/// scheduler is graceful: admission closes, already-queued queries still
/// run, and the workers are joined.
pub struct QueryScheduler {
    core: Arc<SchedCore>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryScheduler {
    /// Wrap `engine` in a scheduler configured by `config`. The engine's LLM
    /// dispatch is throttled through a fresh [`CallSlots`] pool of
    /// `config.llm_slots` slots; `config.workers` threads execute admitted
    /// queries.
    pub fn new(mut engine: Engine, config: SchedConfig) -> Result<QueryScheduler> {
        config.validate()?;
        let slots = Arc::new(CallSlots::new(config.llm_slots));
        engine.set_call_slots(Arc::clone(&slots));
        // One event loop for the whole deployment: completions from every
        // worker's query interleave on the shared reactor, and identical
        // in-flight prompts from different queries coalesce into one
        // physical request.
        engine.set_shared_reactor(Arc::new(SharedReactor::default()));
        engine.set_prompt_coalescer(Arc::new(PromptCoalescer::new()));
        let worker_count = config.workers;
        let start_paused = config.start_paused;
        let core = Arc::new(SchedCore {
            engine,
            slots,
            config,
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                queued_per_tenant: BTreeMap::new(),
                charges: BTreeMap::new(),
                next_seq: 1,
                paused: start_paused,
                shutdown: false,
            }),
            work: Condvar::new(),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            finish_seq: AtomicU64::new(0),
            deadline_rejected: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            coalesced_calls: AtomicU64::new(0),
            batched_rows: AtomicU64::new(0),
            run_ewma: AtomicEwmaMs::new(),
            epoch: Instant::now(),
            limiters: Mutex::new(BTreeMap::new()),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("llmsql-sched-{i}"))
                    .spawn(move || worker_loop(&core))
                    .map_err(|e| Error::scheduler(format!("failed to spawn worker: {e}")))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(QueryScheduler { core, workers })
    }

    /// Admit one query under `tenant` with `priority`, or reject it when the
    /// global queue or the tenant's queue is at capacity
    /// ([`llmsql_types::ErrorKind::Scheduler`]). On admission the returned
    /// [`QueryTicket`] resolves once the query ran.
    pub fn submit(
        &self,
        tenant: impl Into<TenantId>,
        priority: Priority,
        sql: impl Into<String>,
    ) -> Result<QueryTicket> {
        self.submit_inner(tenant.into(), priority, sql.into(), None)
    }

    /// [`QueryScheduler::submit`] with a per-query deadline in milliseconds,
    /// counted from submission. Deadline-aware behaviour, in order:
    ///
    /// 1. **Queue-aware admission.** When the projected queue wait alone
    ///    (policy-aware jobs-ahead count over worker count, times the EWMA
    ///    of completed-query run time) already exceeds the deadline, the
    ///    submission is rejected immediately with
    ///    [`llmsql_types::ErrorKind::DeadlineExceeded`] — queueing it would
    ///    only waste queue space on a doomed query. The estimate is
    ///    optimistic under every policy (under `Priority` only
    ///    higher-or-equal-priority jobs count as ahead; under
    ///    `WeightedFair` no projection is made), so a feasible query is
    ///    never falsely rejected.
    /// 2. **Queue cancellation.** An admitted query whose deadline passes
    ///    while it queues is cancelled when a worker picks it, never
    ///    executed; its ticket resolves with `DeadlineExceeded`.
    /// 3. **Runtime enforcement.** A query that starts in time runs with its
    ///    *remaining* budget: scans check the deadline between dispatch
    ///    waves and fail with `DeadlineExceeded` carrying partial accounting
    ///    (elapsed, calls issued).
    pub fn submit_with_deadline(
        &self,
        tenant: impl Into<TenantId>,
        priority: Priority,
        sql: impl Into<String>,
        deadline_ms: f64,
    ) -> Result<QueryTicket> {
        if !deadline_ms.is_finite() || deadline_ms <= 0.0 {
            return Err(Error::config(
                "deadline_ms must be finite and greater than zero",
            ));
        }
        self.submit_inner(tenant.into(), priority, sql.into(), Some(deadline_ms))
    }

    fn submit_inner(
        &self,
        tenant: TenantId,
        priority: Priority,
        sql: String,
        deadline_ms: Option<f64>,
    ) -> Result<QueryTicket> {
        // Resolve the tenant's limiter before taking the queue lock (the
        // limiter map has its own lock; tokens are only spent after the
        // shutdown check below).
        let limiter = self.core.limiter_for(&tenant);
        let mut state = self.lock_state();
        if state.shutdown {
            return Err(Error::scheduler("scheduler is shutting down"));
        }
        // Per-tenant token buckets: the query axis pre-pays one token, the
        // LLM-call axis must hold credit. A throttled submission never
        // queued, so resubmitting after `retry_after_ms` is loss-less.
        if let Some(limiter) = &limiter {
            if let Err(retry_after_ms) = limiter.admit(self.core.now_ms()) {
                // ordering: Relaxed — monotone statistics counters; the
                // rejection itself is returned on this thread, nothing is
                // published under the counters. (All SchedCore counters
                // below follow this contract; exact cross-counter snapshots
                // are taken under the state mutex in paused tests.)
                self.core.throttled.fetch_add(1, Ordering::Relaxed);
                self.core.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(Error::overloaded(
                    retry_after_ms,
                    format!("tenant '{tenant}' is over its rate limit"),
                ));
            }
        }
        if state.jobs.len() >= self.core.config.max_queue_depth {
            // ordering: Relaxed — statistics counter, see admit() above.
            self.core.rejected.fetch_add(1, Ordering::Relaxed);
            let retry_after_ms = self.core.backlog_retry_hint_ms(state.jobs.len());
            return Err(Error::scheduler(format!(
                "admission queue full ({} queued, cap {})",
                state.jobs.len(),
                self.core.config.max_queue_depth
            ))
            .with_retry_after(retry_after_ms));
        }
        // Deployment-wide load shedding: past either watermark (queue depth,
        // or projected slot wait from the run-time EWMA), an incoming
        // submission that ranks below the highest-priority queued query is
        // shed. Shedding is loss-less — the query never started — and the
        // `Overloaded` rejection carries a retry-after computed from the
        // backlog projection.
        let queued = state.jobs.len();
        let over_depth = self.core.config.shed_queue_watermark > 0
            && queued >= self.core.config.shed_queue_watermark;
        let over_wait = self.core.config.shed_wait_watermark_ms > 0.0
            && self
                .core
                .projected_backlog_wait_ms(queued)
                .is_some_and(|wait| wait >= self.core.config.shed_wait_watermark_ms);
        if over_depth || over_wait {
            if let Some(top) = state.jobs.iter().map(|job| job.priority).max() {
                if priority < top {
                    // ordering: Relaxed — statistics counters, see admit().
                    self.core.shed.fetch_add(1, Ordering::Relaxed);
                    self.core.rejected.fetch_add(1, Ordering::Relaxed);
                    let retry_after_ms = self.core.backlog_retry_hint_ms(queued);
                    return Err(Error::overloaded(
                        retry_after_ms,
                        format!(
                            "shed at admission: {priority} ranks below the highest queued \
                             {top} with {queued} queued past the load watermark"
                        ),
                    ));
                }
            }
        }
        // Queue-aware admission: reject a deadline-carrying query whose
        // projected queue wait alone already dooms it. The estimate must be
        // optimistic under every policy — a query it rules out must truly
        // have no chance — so "jobs ahead" is policy-aware: everything
        // queued under FIFO, only higher-or-equal-priority jobs under
        // Priority (a later high-priority submit overtakes the backlog),
        // and nothing under WeightedFair (deficit order can serve an
        // underserved tenant immediately regardless of position; pick-time
        // cancellation still protects those queries).
        if let Some(deadline) = deadline_ms {
            if let Some(run_ewma_ms) = self.core.run_ewma.get() {
                let jobs_ahead = match self.core.config.policy {
                    SchedPolicy::Fifo => state.jobs.len(),
                    SchedPolicy::Priority => state
                        .jobs
                        .iter()
                        .filter(|job| job.priority >= priority)
                        .count(),
                    SchedPolicy::WeightedFair => 0,
                };
                let projected_wait_ms =
                    run_ewma_ms * (jobs_ahead as f64 / self.core.config.workers as f64);
                if projected_wait_ms > deadline {
                    // ordering: Relaxed — statistics counters, see admit().
                    self.core.rejected.fetch_add(1, Ordering::Relaxed);
                    self.core.deadline_rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(Error::deadline_exceeded(format!(
                        "rejected at admission: projected queue wait {projected_wait_ms:.1}ms \
                         ({jobs_ahead} job(s) ahead over {} workers at ~{run_ewma_ms:.1}ms per \
                         query) exceeds the {deadline:.0}ms deadline (0 LLM calls issued)",
                        self.core.config.workers
                    ))
                    .with_retry_after(projected_wait_ms.ceil().max(1.0) as u64));
                }
            }
        }
        let tenant_queued = state.queued_per_tenant.entry(tenant.clone()).or_insert(0);
        if *tenant_queued >= self.core.config.tenant_queue_cap {
            let retry_after_ms = self.core.backlog_retry_hint_ms(*tenant_queued);
            // ordering: Relaxed — statistics counter, see admit() above.
            self.core.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Error::scheduler(format!(
                "tenant '{tenant}' queue full ({tenant_queued} queued, cap {})",
                self.core.config.tenant_queue_cap
            ))
            .with_retry_after(retry_after_ms));
        }
        *tenant_queued += 1;
        let seq = state.next_seq;
        state.next_seq += 1;
        let ticket_state = TicketState::new();
        state.jobs.push_back(Job {
            sql,
            tenant: tenant.clone(),
            priority,
            seq,
            submitted: Instant::now(),
            deadline_ms,
            ticket: Arc::clone(&ticket_state),
        });
        drop(state);
        // ordering: Relaxed — statistics counter; the queue insert above was
        // published by the state mutex, not by this increment.
        self.core.submitted.fetch_add(1, Ordering::Relaxed);
        self.core.work.notify_one();
        Ok(QueryTicket {
            state: ticket_state,
            id: seq,
            tenant,
        })
    }

    /// Unpause a scheduler created with
    /// [`llmsql_types::SchedConfig::start_paused`]: queued queries start
    /// executing. Idempotent.
    pub fn resume(&self) {
        let mut state = self.lock_state();
        state.paused = false;
        drop(state);
        self.core.work.notify_all();
    }

    /// The scheduled engine (for catalog inspection, backend stats, ...).
    pub fn engine(&self) -> &Engine {
        &self.core.engine
    }

    /// A snapshot of the aggregate statistics.
    pub fn stats(&self) -> SchedStats {
        let state = self.lock_state();
        // ordering: Relaxed — advisory statistics snapshot; counters are
        // individually monotone but not mutually consistent mid-run (tests
        // needing exact totals pause the scheduler first).
        SchedStats {
            submitted: self.core.submitted.load(Ordering::Relaxed),
            rejected: self.core.rejected.load(Ordering::Relaxed),
            completed: self.core.completed.load(Ordering::Relaxed),
            queued: state.jobs.len(),
            slot_capacity: self.core.slots.capacity(),
            peak_slots_in_use: self.core.slots.peak_in_use(),
            total_slot_wait_ms: self.core.slots.total_wait_ms(),
            tenant_calls: state.charges.clone(),
            // ordering: Relaxed — same advisory-snapshot contract as above.
            deadline_rejected: self.core.deadline_rejected.load(Ordering::Relaxed),
            deadline_expired: self.core.deadline_expired.load(Ordering::Relaxed),
            shed: self.core.shed.load(Ordering::Relaxed),
            throttled: self.core.throttled.load(Ordering::Relaxed),
            coalesced_calls: self.core.coalesced_calls.load(Ordering::Relaxed),
            batched_rows: self.core.batched_rows.load(Ordering::Relaxed),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.core.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for QueryScheduler {
    /// Graceful shutdown: close admission, let queued queries finish (a
    /// paused scheduler is resumed so they can), join the workers.
    fn drop(&mut self) {
        {
            let mut state = self.lock_state();
            state.shutdown = true;
            state.paused = false;
        }
        self.core.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Pick (and remove) the next job per the configured policy. Caller holds
/// the state lock.
fn pick_next(state: &mut QueueState, config: &SchedConfig) -> Option<Job> {
    if state.jobs.is_empty() {
        return None;
    }
    let index = match config.policy {
        // Jobs sit in admission order, so FIFO is the front.
        SchedPolicy::Fifo => 0,
        // Highest priority wins; admission order within a level. This scans
        // the whole queue (not per-tenant fronts): a tenant's later
        // high-priority query overtakes its own earlier low-priority ones
        // too.
        SchedPolicy::Priority => state
            .jobs
            .iter()
            .enumerate()
            .max_by(|(ai, a), (bi, b)| {
                a.priority
                    .cmp(&b.priority)
                    .then(b.seq.cmp(&a.seq))
                    .then(bi.cmp(ai))
            })
            .map(|(i, _)| i)?,
        // Deficit scheduling: among tenants with queued work, serve the one
        // with the smallest weight-normalized charge; its earliest job runs.
        SchedPolicy::WeightedFair => {
            let tenant = state
                .jobs
                .iter()
                .map(|j| j.tenant.as_str())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .min_by(|a, b| {
                    let deficit = |t: &str| {
                        state.charges.get(t).copied().unwrap_or(0) as f64
                            / config.weight_of(t) as f64
                    };
                    deficit(a).total_cmp(&deficit(b)).then(a.cmp(b))
                })?
                .to_string();
            state.jobs.iter().position(|j| j.tenant == tenant)?
        }
    };
    let job = state.jobs.remove(index)?;
    if let Some(queued) = state.queued_per_tenant.get_mut(&job.tenant) {
        *queued = queued.saturating_sub(1);
    }
    Some(job)
}

fn worker_loop(core: &SchedCore) {
    loop {
        let job = {
            let mut state = core.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !state.paused {
                    if let Some(job) = pick_next(&mut state, &core.config) {
                        break job;
                    }
                    if state.shutdown {
                        return;
                    }
                }
                state = core.work.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        };
        run_job(core, job);
    }
}

fn run_job(core: &SchedCore, job: Job) {
    let queue_ms = job.submitted.elapsed().as_secs_f64() * 1000.0;
    // Queue cancellation: a query whose deadline passed while it queued is
    // never executed — its ticket resolves with the structured error and the
    // queue-time accounting it did accumulate.
    let expired = job
        .deadline_ms
        .is_some_and(|deadline_ms| queue_ms >= deadline_ms);
    if expired {
        // ordering: Relaxed — statistics counter; the ticket resolution that
        // callers wait on synchronizes via its own mutex/condvar.
        core.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }
    let run_start = Instant::now();
    let result = if expired {
        let deadline_ms = job.deadline_ms.expect("expired implies a deadline");
        Err(Error::deadline_exceeded(format!(
            "cancelled unexecuted: queued {queue_ms:.1}ms past its {deadline_ms:.0}ms deadline \
             (0 LLM calls issued)"
        )))
    } else {
        // A panicking query must not take its worker thread (and every later
        // queued query's ticket) down with it.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match job.deadline_ms {
            // The query gets only its remaining budget after queueing.
            Some(deadline_ms) => core
                .engine
                .execute_with_deadline(&job.sql, deadline_ms - queue_ms),
            None => core.engine.execute(&job.sql),
        }))
        .unwrap_or_else(|_| Err(Error::execution("query execution panicked")))
    };
    let run_ms = run_start.elapsed().as_secs_f64() * 1000.0;
    if !expired {
        core.run_ewma.observe(run_ms);
    }

    let (llm_calls, slot_wait_ms) = match &result {
        Ok(r) => (r.metrics.llm_calls(), r.metrics.slot_wait_ms),
        Err(_) => (0, 0.0),
    };
    if let Ok(r) = &result {
        // ordering: Relaxed — statistics counters, same advisory contract as
        // the rest of SchedCore's.
        core.coalesced_calls
            .fetch_add(r.metrics.coalesced_calls, Ordering::Relaxed);
        core.batched_rows
            .fetch_add(r.metrics.batched_rows, Ordering::Relaxed);
    }
    // Graceful degradation: surface the partial-result marker on the
    // outcome so QoS layers need not dig through the metrics.
    let incomplete = result
        .as_ref()
        .ok()
        .and_then(|r| r.metrics.incomplete.clone());
    // Post-paid rate limiting: debit the tenant's call bucket with the
    // calls actually consumed; an overdrawn bucket holds the tenant's next
    // admissions until the debt drains.
    if llm_calls > 0 {
        if let Some(limiter) = core.limiter_for(&job.tenant) {
            limiter.charge_calls(core.now_ms(), llm_calls);
        }
    }
    {
        let mut state = core.state.lock().unwrap_or_else(|e| e.into_inner());
        // Charge the tenant's deficit counter with the calls the query
        // consumed; a call-free query is charged 1 so spinning cheap queries
        // cannot monopolize the fair-share rotation for free.
        *state.charges.entry(job.tenant.clone()).or_insert(0) += llm_calls.max(1);
    }
    // ordering: Relaxed — finish_seq only needs uniqueness and atomicity of
    // the increment itself to hand out distinct ordinals; completed is a
    // statistics counter like the rest of SchedCore's.
    let finish_seq = core.finish_seq.fetch_add(1, Ordering::Relaxed) + 1;
    core.completed.fetch_add(1, Ordering::Relaxed);
    job.ticket.fulfill(QueryOutcome {
        tenant: job.tenant,
        priority: job.priority,
        result,
        queue_ms,
        run_ms,
        slot_wait_ms,
        llm_calls,
        incomplete,
        finish_seq,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_llm::KnowledgeBase;
    use llmsql_store::Catalog;
    use llmsql_types::{
        Column, DataType, EngineConfig, ErrorKind, ExecutionMode, LlmFidelity, PromptStrategy, Row,
        Schema, Value,
    };

    /// A traditional in-memory engine (no model): queries are instant, which
    /// keeps policy tests about ordering, not timing.
    fn store_engine() -> Engine {
        let engine = Engine::new(EngineConfig::default().with_mode(ExecutionMode::Traditional));
        engine
            .execute_script(
                "CREATE TABLE nums (n INTEGER PRIMARY KEY); \
                 INSERT INTO nums VALUES (1), (2), (3), (4)",
            )
            .unwrap();
        engine
    }

    /// An LLM-only engine over a small virtual relation, cache off so every
    /// query pays a stable, identical number of logical calls.
    fn llm_engine(parallelism: usize) -> Engine {
        llm_engine_with_latency(parallelism, 0.0)
    }

    /// [`llm_engine`] with a simulated per-call latency, for tests that need
    /// queries to take measurable wall time.
    fn llm_engine_with_latency(parallelism: usize, latency_ms: f64) -> Engine {
        let schema = Schema::virtual_table(
            "countries",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("population", DataType::Int),
            ],
        );
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                Row::new(vec![
                    Value::Text(format!("Country {i:02}")),
                    Value::Int(100 + i as i64),
                ])
            })
            .collect();
        let catalog = Catalog::new();
        catalog.create_virtual_table(schema.clone()).unwrap();
        let mut kb = KnowledgeBase::new();
        kb.add_table(schema, rows);
        let mut config = EngineConfig::default()
            .with_mode(ExecutionMode::LlmOnly)
            .with_strategy(PromptStrategy::BatchedRows)
            .with_fidelity(LlmFidelity::perfect())
            .with_batch_size(5)
            .with_seed(11)
            .with_parallelism(parallelism);
        config.enable_prompt_cache = false;
        let mut engine = Engine::with_catalog(catalog, config);
        if latency_ms > 0.0 {
            let sim = llmsql_llm::SimLlm::new(kb.into_shared(), LlmFidelity::perfect(), 11)
                .with_simulated_latency_ms(latency_ms);
            engine.attach_model(std::sync::Arc::new(sim)).unwrap();
        } else {
            engine.attach_simulator(kb.into_shared()).unwrap();
        }
        engine
    }

    #[test]
    fn scheduler_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryScheduler>();
        assert_send_sync::<SchedStats>();
    }

    #[test]
    fn fifo_completes_in_admission_order() {
        let sched = QueryScheduler::new(
            store_engine(),
            SchedConfig::default().with_workers(1).paused(),
        )
        .unwrap();
        let tickets: Vec<QueryTicket> = (0..6)
            .map(|i| {
                sched
                    .submit(
                        format!("tenant-{}", i % 3),
                        Priority::NORMAL,
                        "SELECT COUNT(*) FROM nums",
                    )
                    .unwrap()
            })
            .collect();
        sched.resume();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let outcome = ticket.wait();
            assert_eq!(outcome.finish_seq, i as u64 + 1, "FIFO order violated");
            assert!(outcome.result.is_ok());
            assert!(outcome.queue_ms >= 0.0 && outcome.run_ms >= 0.0);
        }
        let stats = sched.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.queued, 0);
    }

    #[test]
    fn priority_flood_cannot_starve_a_high_priority_query() {
        // Regression for the starvation scenario: a flood of low-priority
        // queries is admitted first; one high-priority query submitted after
        // them must run before the flood, not behind it.
        let sched = QueryScheduler::new(
            store_engine(),
            SchedConfig::default()
                .with_workers(1)
                .with_policy(SchedPolicy::Priority)
                .paused(),
        )
        .unwrap();
        let flood: Vec<QueryTicket> = (0..20)
            .map(|_| {
                sched
                    .submit("bulk", Priority::LOW, "SELECT COUNT(*) FROM nums")
                    .unwrap()
            })
            .collect();
        let urgent = sched
            .submit(
                "interactive",
                Priority::HIGH,
                "SELECT n FROM nums WHERE n = 1",
            )
            .unwrap();
        sched.resume();
        let outcome = urgent.wait();
        assert_eq!(
            outcome.finish_seq, 1,
            "high-priority query was starved behind the flood"
        );
        for t in flood {
            assert!(t.wait().finish_seq > 1);
        }
    }

    #[test]
    fn equal_priorities_keep_admission_order() {
        let sched = QueryScheduler::new(
            store_engine(),
            SchedConfig::default()
                .with_workers(1)
                .with_policy(SchedPolicy::Priority)
                .paused(),
        )
        .unwrap();
        let tickets: Vec<QueryTicket> = (0..5)
            .map(|_| {
                sched
                    .submit("t", Priority::NORMAL, "SELECT COUNT(*) FROM nums")
                    .unwrap()
            })
            .collect();
        sched.resume();
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(ticket.wait().finish_seq, i as u64 + 1);
        }
    }

    #[test]
    fn admission_rejects_beyond_global_and_tenant_caps() {
        let sched = QueryScheduler::new(
            store_engine(),
            SchedConfig::default()
                .with_workers(1)
                .with_max_queue_depth(4)
                .with_tenant_queue_cap(2)
                .paused(),
        )
        .unwrap();
        let sql = "SELECT COUNT(*) FROM nums";
        // Tenant cap: the third submission from one tenant is rejected.
        sched.submit("a", Priority::NORMAL, sql).unwrap();
        sched.submit("a", Priority::NORMAL, sql).unwrap();
        let err = sched.submit("a", Priority::NORMAL, sql).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Scheduler);
        assert!(err.message.contains("tenant 'a'"), "{err}");
        // Global cap: other tenants fill the queue to 4, then everyone is
        // rejected.
        sched.submit("b", Priority::NORMAL, sql).unwrap();
        sched.submit("c", Priority::NORMAL, sql).unwrap();
        let err = sched.submit("d", Priority::NORMAL, sql).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Scheduler);
        assert!(err.message.contains("admission queue full"), "{err}");
        assert_eq!(sched.stats().rejected, 2);
        sched.resume();
    }

    #[test]
    fn rate_limited_tenant_is_throttled_with_retry_after() {
        let sched = QueryScheduler::new(
            store_engine(),
            SchedConfig::default()
                .with_workers(1)
                .with_tenant_rate_limit("metered", llmsql_types::TenantRateLimit::queries(1.0, 2.0))
                .paused(),
        )
        .unwrap();
        let sql = "SELECT COUNT(*) FROM nums";
        // Burst of 2 admits, then the bucket is dry for ~1s.
        sched.submit("metered", Priority::NORMAL, sql).unwrap();
        sched.submit("metered", Priority::NORMAL, sql).unwrap();
        let err = sched.submit("metered", Priority::NORMAL, sql).unwrap_err();
        assert!(err.is_overloaded(), "{err}");
        assert!(err.retry_after_ms().unwrap() > 0);
        assert!(err.message.contains("rate limit"), "{err}");
        // Unmetered tenants are unaffected.
        sched.submit("free", Priority::NORMAL, sql).unwrap();
        let stats = sched.stats();
        assert_eq!(stats.throttled, 1);
        assert_eq!(stats.shed, 0);
        assert_eq!(
            stats.rejected,
            stats.throttled + stats.shed,
            "counters must match the rejections handed out exactly"
        );
        sched.resume();
    }

    #[test]
    fn shedding_drops_only_lower_priority_past_the_watermark() {
        let sched = QueryScheduler::new(
            store_engine(),
            SchedConfig::default()
                .with_workers(1)
                .with_policy(SchedPolicy::Priority)
                .with_shed_queue_watermark(2)
                .paused(),
        )
        .unwrap();
        let sql = "SELECT COUNT(*) FROM nums";
        // Below the watermark everything is admitted.
        sched.submit("t", Priority::NORMAL, sql).unwrap();
        sched.submit("t", Priority::NORMAL, sql).unwrap();
        // Past it, lower-priority work is shed with a structured rejection...
        let err = sched.submit("bulk", Priority::LOW, sql).unwrap_err();
        assert!(err.is_overloaded(), "{err}");
        assert!(err.retry_after_ms().unwrap() > 0);
        assert!(err.message.contains("shed at admission"), "{err}");
        // ...while equal- and higher-priority submissions still get in.
        sched.submit("t", Priority::NORMAL, sql).unwrap();
        sched.submit("vip", Priority::HIGH, sql).unwrap();
        // A LOW submission keeps being shed while HIGH work is queued.
        assert!(sched.submit("bulk", Priority::LOW, sql).is_err());
        let stats = sched.stats();
        assert_eq!(stats.shed, 2);
        assert_eq!(stats.throttled, 0);
        assert_eq!(stats.rejected, 2);
        sched.resume();
    }

    #[test]
    fn queue_full_and_tenant_cap_rejections_carry_retry_after() {
        let sched = QueryScheduler::new(
            store_engine(),
            SchedConfig::default()
                .with_workers(1)
                .with_max_queue_depth(2)
                .with_tenant_queue_cap(1)
                .paused(),
        )
        .unwrap();
        let sql = "SELECT COUNT(*) FROM nums";
        sched.submit("a", Priority::NORMAL, sql).unwrap();
        // Tenant cap rejection: structured Scheduler error plus the hint.
        let err = sched.submit("a", Priority::NORMAL, sql).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Scheduler);
        assert!(err.retry_after_ms().unwrap() >= 1, "{err}");
        sched.submit("b", Priority::NORMAL, sql).unwrap();
        // Global queue-full rejection: same shape.
        let err = sched.submit("c", Priority::NORMAL, sql).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Scheduler);
        assert!(err.message.contains("admission queue full"), "{err}");
        assert!(err.retry_after_ms().unwrap() >= 1);
        sched.resume();
    }

    #[test]
    fn throttled_tenant_cannot_starve_others_fair_share() {
        // Regression: a tenant hammering a tight rate limit must only hurt
        // itself — its rejections are loss-less and every other tenant's
        // queries are admitted and complete.
        let sched = QueryScheduler::new(
            store_engine(),
            SchedConfig::default()
                .with_workers(1)
                .with_tenant_rate_limit("greedy", llmsql_types::TenantRateLimit::queries(1.0, 1.0)),
        )
        .unwrap();
        let sql = "SELECT COUNT(*) FROM nums";
        let mut greedy_admitted = Vec::new();
        let mut greedy_throttled = 0u64;
        let mut polite = Vec::new();
        for _ in 0..10 {
            match sched.submit("greedy", Priority::NORMAL, sql) {
                Ok(ticket) => greedy_admitted.push(ticket),
                Err(err) => {
                    assert!(err.is_overloaded(), "{err}");
                    greedy_throttled += 1;
                }
            }
            polite.push(sched.submit("polite", Priority::NORMAL, sql).unwrap());
        }
        assert!(greedy_throttled >= 8, "burst 1 at 1qps: {greedy_throttled}");
        for ticket in polite {
            assert!(ticket.wait().result.is_ok(), "polite tenant was starved");
        }
        for ticket in greedy_admitted {
            assert!(ticket.wait().result.is_ok());
        }
        let stats = sched.stats();
        assert_eq!(stats.throttled, greedy_throttled);
        assert_eq!(stats.rejected, greedy_throttled);
        assert_eq!(stats.completed, stats.submitted);
    }

    #[test]
    fn partial_results_surface_on_the_outcome() {
        // 5 pages at ~10ms each against a 25ms deadline: the scan is cut
        // between waves. With partial results on, the outcome resolves Ok
        // with a page-aligned prefix and the Incomplete marker surfaced on
        // the QueryOutcome itself.
        let schema = Schema::virtual_table(
            "countries",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("population", DataType::Int),
            ],
        );
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                Row::new(vec![
                    Value::Text(format!("Country {i:02}")),
                    Value::Int(100 + i as i64),
                ])
            })
            .collect();
        let catalog = Catalog::new();
        catalog.create_virtual_table(schema.clone()).unwrap();
        let mut kb = KnowledgeBase::new();
        kb.add_table(schema, rows);
        let mut config = EngineConfig::default()
            .with_mode(ExecutionMode::LlmOnly)
            .with_strategy(PromptStrategy::BatchedRows)
            .with_fidelity(LlmFidelity::perfect())
            .with_batch_size(2)
            .with_seed(11)
            .with_parallelism(1)
            .with_partial_results();
        config.enable_prompt_cache = false;
        let mut engine = Engine::with_catalog(catalog, config);
        let sim = llmsql_llm::SimLlm::new(kb.into_shared(), LlmFidelity::perfect(), 11)
            .with_simulated_latency_ms(10.0);
        engine.attach_model(std::sync::Arc::new(sim)).unwrap();
        let sched = QueryScheduler::new(engine, SchedConfig::default().with_workers(1)).unwrap();
        let outcome = sched
            .submit_with_deadline("t", Priority::NORMAL, "SELECT name FROM countries", 25.0)
            .unwrap()
            .wait();
        let result = outcome.result.expect("degrades gracefully, not an error");
        assert!(result.is_partial());
        let marker = outcome.incomplete.expect("marker surfaced on the outcome");
        assert_eq!(marker.kind, ErrorKind::DeadlineExceeded);
        assert!(marker.rows_delivered < 10, "{marker}");
        assert_eq!(marker.rows_delivered % 2, 0, "prefix must be page-aligned");
        assert_eq!(result.rows().len() as u64, marker.rows_delivered);
    }

    #[test]
    fn weighted_fair_serves_tenants_by_weight() {
        // Deterministic companion to the proptest below: weights 3:1 with a
        // single worker; among the first 8 completions tenant shares must
        // track the weights (6:2), not the alternating admission order.
        let sched = QueryScheduler::new(
            llm_engine(1),
            SchedConfig::default()
                .with_workers(1)
                .with_policy(SchedPolicy::WeightedFair)
                .with_tenant_weight("gold", 3)
                .with_tenant_weight("bronze", 1)
                .paused(),
        )
        .unwrap();
        let mut tickets = Vec::new();
        for _ in 0..8 {
            tickets.push(
                sched
                    .submit("gold", Priority::NORMAL, "SELECT name FROM countries")
                    .unwrap(),
            );
            tickets.push(
                sched
                    .submit("bronze", Priority::NORMAL, "SELECT name FROM countries")
                    .unwrap(),
            );
        }
        sched.resume();
        let outcomes: Vec<QueryOutcome> = tickets.into_iter().map(QueryTicket::wait).collect();
        let prefix_share = |tenant: &str| {
            outcomes
                .iter()
                .filter(|o| o.finish_seq <= 8 && o.tenant == tenant)
                .count()
        };
        let gold = prefix_share("gold");
        let bronze = prefix_share("bronze");
        assert_eq!(gold + bronze, 8);
        assert_eq!(gold, 6, "gold should get 3/4 of the prefix, got {gold}/8");
        assert_eq!(bronze, 2);
        // Every query issued the same logical call count (uniform cost).
        let calls: std::collections::BTreeSet<u64> = outcomes.iter().map(|o| o.llm_calls).collect();
        assert_eq!(calls.len(), 1, "expected uniform cost, got {calls:?}");
    }

    #[test]
    fn unknown_tenants_under_weighted_fair_schedule_cleanly() {
        // Regression: the weight-normalized deficit divides by
        // `config.weight_of(tenant)`; tenants absent from the weight map
        // (falling back to the default weight) must produce finite deficits
        // and sane ordering, not inf/NaN that silently breaks the policy.
        let sched = QueryScheduler::new(
            store_engine(),
            SchedConfig::default()
                .with_workers(1)
                .with_policy(SchedPolicy::WeightedFair)
                .with_tenant_weight("known", 3)
                .paused(),
        )
        .unwrap();
        let sql = "SELECT COUNT(*) FROM nums";
        let mut tickets = Vec::new();
        for _ in 0..4 {
            tickets.push(sched.submit("known", Priority::NORMAL, sql).unwrap());
            tickets.push(sched.submit("stranger", Priority::NORMAL, sql).unwrap());
            tickets.push(sched.submit("drifter", Priority::NORMAL, sql).unwrap());
        }
        sched.resume();
        let outcomes: Vec<QueryOutcome> = tickets.into_iter().map(QueryTicket::wait).collect();
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        let stats = sched.stats();
        assert_eq!(stats.completed, 12);
        // Every tenant — mapped or not — was served and charged.
        assert_eq!(stats.tenant_calls.len(), 3);
        assert!(stats.tenant_calls.values().all(|&c| c > 0));
    }

    #[test]
    fn expired_deadline_cancels_queued_query_without_executing() {
        // A query whose deadline passes while it queues must resolve with
        // DeadlineExceeded and never run.
        let sched = QueryScheduler::new(
            llm_engine(1),
            SchedConfig::default().with_workers(1).paused(),
        )
        .unwrap();
        let doomed = sched
            .submit_with_deadline("t", Priority::NORMAL, "SELECT name FROM countries", 15.0)
            .unwrap();
        let unhurried = sched
            .submit("t", Priority::NORMAL, "SELECT name FROM countries")
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        sched.resume();
        let outcome = doomed.wait();
        let err = outcome.result.unwrap_err();
        assert_eq!(err.kind, ErrorKind::DeadlineExceeded);
        assert!(err.message.contains("0 LLM calls issued"), "{err}");
        assert_eq!(outcome.llm_calls, 0, "cancelled query must not execute");
        // The deadline-free companion is unaffected.
        assert!(unhurried.wait().result.is_ok());
        let stats = sched.stats();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.deadline_rejected, 0);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn queue_aware_admission_rejects_hopeless_deadlines() {
        // ~10ms per call, 3 calls per query: each query runs ~30ms.
        let sched = QueryScheduler::new(
            llm_engine_with_latency(1, 10.0),
            SchedConfig::default().with_workers(1),
        )
        .unwrap();
        let sql = "SELECT name FROM countries";
        // Warm the run-time EWMA (no projection is possible without it).
        sched
            .submit("t", Priority::NORMAL, sql)
            .unwrap()
            .wait()
            .result
            .unwrap();
        // Build a backlog, then submit with a deadline far below the
        // projected queue wait: rejected at admission, never queued.
        let backlog: Vec<QueryTicket> = (0..5)
            .map(|_| sched.submit("t", Priority::NORMAL, sql).unwrap())
            .collect();
        let err = sched
            .submit_with_deadline("t", Priority::NORMAL, sql, 1.0)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::DeadlineExceeded);
        assert!(err.message.contains("projected queue wait"), "{err}");
        let stats = sched.stats();
        assert_eq!(stats.deadline_rejected, 1);
        assert_eq!(stats.rejected, 1);
        for t in backlog {
            assert!(t.wait().result.is_ok());
        }
        // Invalid deadlines are config errors, not silent admits.
        assert!(sched
            .submit_with_deadline("t", Priority::NORMAL, sql, 0.0)
            .is_err());
        assert!(sched
            .submit_with_deadline("t", Priority::NORMAL, sql, f64::NAN)
            .is_err());
    }

    #[test]
    fn priority_aware_projection_admits_urgent_deadlines() {
        // Regression: the queue-wait projection must not count lower-priority
        // backlog as "ahead" of a high-priority submission — under
        // SchedPolicy::Priority the urgent query overtakes the flood, so a
        // FIFO-position estimate would falsely reject a feasible query.
        let sched = QueryScheduler::new(
            llm_engine_with_latency(1, 10.0),
            SchedConfig::default()
                .with_workers(1)
                .with_policy(SchedPolicy::Priority),
        )
        .unwrap();
        let sql = "SELECT name FROM countries";
        // Warm the run-time EWMA (~30ms per query: 3 calls at ~10ms).
        sched
            .submit("t", Priority::NORMAL, sql)
            .unwrap()
            .wait()
            .result
            .unwrap();
        // A low-priority flood deep enough that the FIFO projection (~8 ×
        // 30ms = 240ms) would reject a 150ms deadline...
        let flood: Vec<QueryTicket> = (0..8)
            .map(|_| sched.submit("bulk", Priority::LOW, sql).unwrap())
            .collect();
        // ...but the urgent query has zero higher-or-equal-priority jobs
        // ahead: admitted, runs next, and finishes well inside its deadline.
        let urgent = sched
            .submit_with_deadline("vip", Priority::HIGH, sql, 150.0)
            .unwrap();
        let outcome = urgent.wait();
        assert!(
            outcome.result.is_ok(),
            "urgent query should beat the flood: {:?}",
            outcome.result.err()
        );
        for t in flood {
            t.wait();
        }
        assert_eq!(sched.stats().deadline_rejected, 0);
    }

    #[test]
    fn generous_deadlines_change_nothing() {
        // A deadline that is not hit must leave rows and logical call
        // counts byte-identical to a deadline-free run.
        let sql = "SELECT name, population FROM countries";
        let baseline = {
            let sched =
                QueryScheduler::new(llm_engine(4), SchedConfig::default().with_workers(1)).unwrap();
            let outcome = sched.submit("t", Priority::NORMAL, sql).unwrap().wait();
            let result = outcome.result.unwrap();
            (result.rows().to_vec(), result.metrics.llm_calls())
        };
        let sched =
            QueryScheduler::new(llm_engine(4), SchedConfig::default().with_workers(1)).unwrap();
        let outcome = sched
            .submit_with_deadline("t", Priority::NORMAL, sql, 60_000.0)
            .unwrap()
            .wait();
        let result = outcome.result.unwrap();
        assert_eq!(result.rows(), &baseline.0[..], "deadline changed rows");
        assert_eq!(
            result.metrics.llm_calls(),
            baseline.1,
            "deadline changed the logical call count"
        );
        assert_eq!(sched.stats().deadline_expired, 0);
    }

    #[test]
    fn scheduler_drop_completes_queued_work() {
        let tickets: Vec<QueryTicket> = {
            let sched = QueryScheduler::new(
                store_engine(),
                SchedConfig::default().with_workers(2).paused(),
            )
            .unwrap();
            (0..5)
                .map(|_| {
                    sched
                        .submit("t", Priority::NORMAL, "SELECT COUNT(*) FROM nums")
                        .unwrap()
                })
                .collect()
            // Dropped while paused with 5 queries queued: shutdown resumes
            // and drains before joining the workers.
        };
        for ticket in tickets {
            let outcome = ticket.wait();
            assert_eq!(
                outcome.result.unwrap().scalar(),
                Some(Value::Int(4)),
                "queued query was dropped unexecuted"
            );
        }
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let sched = QueryScheduler::new(store_engine(), SchedConfig::default()).unwrap();
        sched.lock_state().shutdown = true;
        let err = sched
            .submit("t", Priority::NORMAL, "SELECT COUNT(*) FROM nums")
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Scheduler);
        assert!(err.message.contains("shutting down"), "{err}");
    }

    #[test]
    fn failing_queries_resolve_their_tickets_and_spare_the_worker() {
        let sched = QueryScheduler::new(store_engine(), SchedConfig::default()).unwrap();
        let bad = sched
            .submit("t", Priority::NORMAL, "SELECT missing_col FROM nums")
            .unwrap();
        let outcome = bad.wait();
        assert_eq!(outcome.result.unwrap_err().kind, ErrorKind::Binding);
        // The worker survives and keeps serving.
        let ok = sched
            .submit("t", Priority::NORMAL, "SELECT COUNT(*) FROM nums")
            .unwrap();
        assert!(ok.wait().result.is_ok());
    }

    #[test]
    fn slot_pool_caps_global_in_flight_across_queries() {
        // 8 queries at parallelism 4 through 2 slots: without the pool,
        // in-flight would reach workers * parallelism; with it, the global
        // peak cannot exceed 2.
        let sched = QueryScheduler::new(
            llm_engine(4),
            SchedConfig::default().with_workers(4).with_llm_slots(2),
        )
        .unwrap();
        let tickets: Vec<QueryTicket> = (0..8)
            .map(|i| {
                sched
                    .submit(
                        format!("t{}", i % 2),
                        Priority::NORMAL,
                        "SELECT name, population FROM countries",
                    )
                    .unwrap()
            })
            .collect();
        let outcomes: Vec<QueryOutcome> = tickets.into_iter().map(QueryTicket::wait).collect();
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        let stats = sched.stats();
        assert_eq!(stats.slot_capacity, 2);
        assert!(
            stats.peak_slots_in_use <= 2,
            "global in-flight exceeded the slot pool: {stats:?}"
        );
        assert!(stats.peak_slots_in_use >= 1);
        assert_eq!(stats.completed, 8);
        // Per-tenant deficit counters saw every query's calls.
        assert_eq!(
            stats.tenant_calls.values().sum::<u64>(),
            outcomes.iter().map(|o| o.llm_calls).sum::<u64>()
        );
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Under weighted fair share with sustained backlog, the
            /// completed-call shares of any completion prefix track the
            /// configured weights: the deficit counters keep
            /// |calls_a/w_a - calls_b/w_b| within one query's cost.
            #[test]
            fn weighted_fair_shares_converge_to_weights(
                weight_a in 1u32..5,
                weight_b in 1u32..5,
            ) {
                let per_tenant = 12usize;
                let sched = QueryScheduler::new(
                    llm_engine(1),
                    SchedConfig::default()
                        .with_workers(1)
                        .with_policy(SchedPolicy::WeightedFair)
                        .with_tenant_weight("a", weight_a)
                        .with_tenant_weight("b", weight_b)
                        .paused(),
                )
                .unwrap();
                let mut tickets = Vec::new();
                for _ in 0..per_tenant {
                    tickets.push(sched.submit("a", Priority::NORMAL,
                        "SELECT name FROM countries").unwrap());
                    tickets.push(sched.submit("b", Priority::NORMAL,
                        "SELECT name FROM countries").unwrap());
                }
                sched.resume();
                let outcomes: Vec<QueryOutcome> =
                    tickets.into_iter().map(QueryTicket::wait).collect();
                let cost = outcomes[0].llm_calls.max(1);
                prop_assert!(outcomes.iter().all(|o| o.llm_calls == outcomes[0].llm_calls),
                    "non-uniform query cost breaks the share math");

                // Prefix short enough that both tenants still had backlog
                // throughout with margin (the heavier tenant drains first at
                // ~prefix * max_w / (w_a + w_b) completions; keep that well
                // under per_tenant).
                let max_w = weight_a.max(weight_b) as usize;
                let prefix =
                    (per_tenant * (weight_a + weight_b) as usize * 3 / (4 * max_w)) as u64;
                let calls_in_prefix = |tenant: &str| -> u64 {
                    outcomes
                        .iter()
                        .filter(|o| o.tenant == tenant && o.finish_seq <= prefix)
                        .map(|o| o.llm_calls)
                        .sum()
                };
                let (calls_a, calls_b) = (calls_in_prefix("a"), calls_in_prefix("b"));
                prop_assert_eq!(calls_a % cost, 0);
                // Deficit bound: weight-normalized charges never drift apart
                // by more than one query's cost.
                let norm_a = calls_a as f64 / weight_a as f64;
                let norm_b = calls_b as f64 / weight_b as f64;
                prop_assert!(
                    (norm_a - norm_b).abs() <= cost as f64 + 1e-9,
                    "shares diverged from weights: a={} (w={}), b={} (w={}), prefix={}",
                    calls_a, weight_a, calls_b, weight_b, prefix
                );
            }
        }
    }
}
