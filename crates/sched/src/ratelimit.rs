//! Per-tenant token buckets for admission-time overload shedding.
//!
//! Buckets are parameterized on an explicit millisecond clock (`now_ms`)
//! instead of reading wall time themselves: the scheduler passes its epoch
//! clock, and tests drive any schedule of arrivals deterministically —
//! including the property test below, which checks the core token-bucket
//! invariant (admissions never exceed burst + elapsed × rate) over arbitrary
//! arrival schedules.

use std::sync::Mutex;

use llmsql_types::TenantRateLimit;

/// Mutable bucket state, guarded by one mutex (admission is control-plane).
struct BucketState {
    /// Current token balance. May go negative on the post-paid call axis.
    tokens: f64,
    /// Clock of the last refill, milliseconds.
    last_ms: u64,
}

/// A token bucket: `capacity` burst tokens, refilled continuously at
/// `refill_per_ms`. All operations take the current clock explicitly, so
/// behaviour is a pure function of the call schedule.
pub struct TokenBucket {
    capacity: f64,
    refill_per_ms: f64,
    state: Mutex<BucketState>,
}

impl std::fmt::Debug for TokenBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenBucket")
            .field("capacity", &self.capacity)
            .field("refill_per_ms", &self.refill_per_ms)
            .finish_non_exhaustive()
    }
}

impl TokenBucket {
    /// A bucket holding `burst` tokens, refilled at `rate_per_sec`, starting
    /// full at clock `now_ms`.
    pub fn new(rate_per_sec: f64, burst: f64, now_ms: u64) -> TokenBucket {
        TokenBucket {
            capacity: burst,
            refill_per_ms: rate_per_sec / 1000.0,
            state: Mutex::new(BucketState {
                tokens: burst,
                last_ms: now_ms,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BucketState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Credit the time elapsed since the last refill, clamped to capacity
    /// (a debt balance climbs back through zero at the refill rate).
    fn refill(&self, s: &mut BucketState, now_ms: u64) {
        let elapsed_ms = now_ms.saturating_sub(s.last_ms) as f64;
        s.last_ms = s.last_ms.max(now_ms);
        s.tokens = (s.tokens + elapsed_ms * self.refill_per_ms).min(self.capacity);
    }

    /// How long until `need` tokens have dripped in, rounded up, ≥ 1 ms.
    fn eta_ms(&self, need: f64) -> u64 {
        if self.refill_per_ms <= 0.0 {
            return u64::MAX;
        }
        (need / self.refill_per_ms).ceil().max(1.0) as u64
    }

    /// Take `cost` tokens at clock `now_ms`, or report how many milliseconds
    /// until the balance would cover the cost.
    pub fn try_take(&self, now_ms: u64, cost: f64) -> Result<(), u64> {
        let mut s = self.lock();
        self.refill(&mut s, now_ms);
        if s.tokens >= cost {
            s.tokens -= cost;
            Ok(())
        } else {
            Err(self.eta_ms(cost - s.tokens))
        }
    }

    /// Require a positive balance (the post-paid axis: the exact cost is
    /// only known at completion). `Err` carries the milliseconds until the
    /// balance turns positive again.
    pub fn check_credit(&self, now_ms: u64) -> Result<(), u64> {
        let mut s = self.lock();
        self.refill(&mut s, now_ms);
        if s.tokens > 0.0 {
            Ok(())
        } else {
            // +1ms so the hinted wait leaves a strictly positive balance
            // even when the debt divides the refill rate exactly.
            Err(self.eta_ms(-s.tokens).saturating_add(1))
        }
    }

    /// Charge `amount` tokens at completion. The balance may go negative —
    /// a burst overdraws once, then [`TokenBucket::check_credit`] holds the
    /// tenant until the debt is repaid at the refill rate.
    pub fn debit(&self, now_ms: u64, amount: f64) {
        let mut s = self.lock();
        self.refill(&mut s, now_ms);
        s.tokens -= amount;
    }

    /// The balance at clock `now_ms` (observability and tests).
    pub fn balance(&self, now_ms: u64) -> f64 {
        let mut s = self.lock();
        self.refill(&mut s, now_ms);
        s.tokens
    }
}

/// One tenant's admission limiter: a pre-paid query bucket and a post-paid
/// LLM-call bucket, each optional (a zero rate disables the axis).
#[derive(Debug)]
pub struct TenantLimiter {
    queries: Option<TokenBucket>,
    calls: Option<TokenBucket>,
}

impl TenantLimiter {
    /// Build the limiter from its configured [`TenantRateLimit`], with both
    /// buckets full at clock `now_ms`.
    pub fn new(limit: TenantRateLimit, now_ms: u64) -> TenantLimiter {
        let bucket = |rate: f64, burst: f64| {
            (rate > 0.0).then(|| TokenBucket::new(rate, burst.max(1.0), now_ms))
        };
        TenantLimiter {
            queries: bucket(limit.queries_per_sec, limit.query_burst),
            calls: bucket(limit.llm_calls_per_sec, limit.call_burst),
        }
    }

    /// Admit one query at clock `now_ms`: the call axis must hold credit
    /// (checked first, so a rejection never burns a query token) and the
    /// query axis is charged one token. `Err` is the retry-after hint in
    /// milliseconds.
    pub fn admit(&self, now_ms: u64) -> Result<(), u64> {
        if let Some(calls) = &self.calls {
            calls.check_credit(now_ms)?;
        }
        if let Some(queries) = &self.queries {
            queries.try_take(now_ms, 1.0)?;
        }
        Ok(())
    }

    /// Charge the LLM calls a completed query actually consumed.
    pub fn charge_calls(&self, now_ms: u64, calls: u64) {
        if calls == 0 {
            return;
        }
        if let Some(bucket) = &self.calls {
            bucket.debit(now_ms, calls as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_sustained_rate() {
        // 2-token burst, 1 token/sec.
        let bucket = TokenBucket::new(1.0, 2.0, 0);
        assert!(bucket.try_take(0, 1.0).is_ok());
        assert!(bucket.try_take(0, 1.0).is_ok());
        let retry = bucket.try_take(0, 1.0).unwrap_err();
        assert_eq!(retry, 1000, "1 token at 1/s is 1000ms away");
        // The hint is honest: waiting exactly that long succeeds.
        assert!(bucket.try_take(retry, 1.0).is_ok());
        // ...and not a millisecond earlier.
        assert!(bucket.try_take(retry + retry - 1, 1.0).is_err());
    }

    #[test]
    fn refill_clamps_to_capacity() {
        let bucket = TokenBucket::new(100.0, 3.0, 0);
        // An hour idle does not bank more than the burst.
        assert_eq!(bucket.balance(3_600_000), 3.0);
        for _ in 0..3 {
            assert!(bucket.try_take(3_600_000, 1.0).is_ok());
        }
        assert!(bucket.try_take(3_600_000, 1.0).is_err());
    }

    #[test]
    fn post_paid_debt_blocks_credit_until_repaid() {
        // 10 calls/sec, burst 5.
        let bucket = TokenBucket::new(10.0, 5.0, 0);
        assert!(bucket.check_credit(0).is_ok());
        // A big query overdraws: balance goes negative, credit is refused
        // until the debt drains at the refill rate.
        bucket.debit(0, 25.0);
        assert_eq!(bucket.balance(0), -20.0);
        let retry = bucket.check_credit(0).unwrap_err();
        assert_eq!(retry, 2001, "20 tokens at 10/s, plus the >0 epsilon");
        assert!(bucket.check_credit(1000).is_err());
        assert!(bucket.check_credit(retry).is_ok());
    }

    #[test]
    fn limiter_checks_credit_before_spending_a_query_token() {
        let limit = TenantRateLimit {
            queries_per_sec: 10.0,
            query_burst: 1.0,
            llm_calls_per_sec: 10.0,
            call_burst: 5.0,
        };
        let limiter = TenantLimiter::new(limit, 0);
        assert!(limiter.admit(0).is_ok());
        limiter.charge_calls(0, 50); // deep in debt
        let retry = limiter.admit(200).unwrap_err();
        assert!(retry > 1000, "call debt dominates: {retry}");
        // The failed admission did not burn the (refilled) query token.
        assert!(limiter.queries.as_ref().unwrap().balance(200) > 1e-9);
    }

    #[test]
    fn disabled_axes_never_reject() {
        let limiter = TenantLimiter::new(TenantRateLimit::queries(0.0, 0.0), 0);
        for t in 0..100 {
            assert!(limiter.admit(t).is_ok());
            limiter.charge_calls(t, 1_000_000);
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The token-bucket invariant: for ANY arrival schedule, the
            /// number of accepted unit-cost takes never exceeds the burst
            /// plus what the elapsed time could have refilled.
            #[test]
            fn accepted_never_exceeds_burst_plus_refill(
                rate_per_sec in 0.5f64..50.0,
                burst in 1.0f64..10.0,
                gaps_ms in proptest::collection::vec(0u64..400, 1..80),
            ) {
                let bucket = TokenBucket::new(rate_per_sec, burst, 0);
                let mut now_ms = 0u64;
                let mut accepted = 0u64;
                for gap in &gaps_ms {
                    now_ms += gap;
                    if bucket.try_take(now_ms, 1.0).is_ok() {
                        accepted += 1;
                    }
                }
                let ceiling = burst + now_ms as f64 * rate_per_sec / 1000.0;
                prop_assert!(
                    (accepted as f64) <= ceiling + 1e-6,
                    "accepted {} takes but burst {} + {}ms at {}/s only covers {:.3}",
                    accepted, burst, now_ms, rate_per_sec, ceiling
                );
            }

            /// The retry-after hint is always sufficient: waiting exactly
            /// the hinted time makes the next take succeed.
            #[test]
            fn retry_after_hint_is_sufficient(
                rate_per_sec in 0.5f64..50.0,
                burst in 1.0f64..10.0,
                drains in 1u32..20,
            ) {
                let bucket = TokenBucket::new(rate_per_sec, burst, 0);
                for _ in 0..drains {
                    let _ = bucket.try_take(0, 1.0);
                }
                if let Err(retry) = bucket.try_take(0, 1.0) {
                    prop_assert!(retry >= 1);
                    prop_assert!(bucket.try_take(retry, 1.0).is_ok(),
                        "waiting the hinted {retry}ms must cover the take");
                }
            }
        }
    }
}
