//! Query tickets: the handle a submitter holds while the scheduler runs (or
//! queues) their query, and the outcome it resolves to.

use std::sync::{Arc, Condvar, Mutex};

use llmsql_core::QueryResult;
use llmsql_types::{Incomplete, Priority, Result, TenantId};

/// Everything known about one scheduled query once it finished.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Tenant the query was submitted under.
    pub tenant: TenantId,
    /// Priority it was submitted with.
    pub priority: Priority,
    /// The query's result (or the error it failed with).
    pub result: Result<QueryResult>,
    /// Time between admission and the query starting to run, milliseconds.
    pub queue_ms: f64,
    /// Wall-clock execution time, milliseconds.
    pub run_ms: f64,
    /// Time the query's workers spent blocked waiting for global LLM-call
    /// slots (copied from `ExecMetrics::slot_wait_ms`), milliseconds.
    pub slot_wait_ms: f64,
    /// Logical LLM calls the query issued.
    pub llm_calls: u64,
    /// Set when the query was cut short under graceful degradation
    /// (`EngineConfig::with_partial_results`): the result's rows are a
    /// page-aligned prefix and this marker carries the triggering fault
    /// plus the rows/calls accounting at the cut. Copied from
    /// `ExecMetrics::incomplete` so QoS layers see it without digging
    /// through the metrics.
    pub incomplete: Option<Incomplete>,
    /// Global completion ordinal (1 = first query the scheduler finished).
    /// Fairness and starvation tests key off this.
    pub finish_seq: u64,
}

/// Shared slot the worker fulfills and the ticket holder waits on.
pub(crate) struct TicketState {
    outcome: Mutex<Option<QueryOutcome>>,
    done: Condvar,
}

impl TicketState {
    pub(crate) fn new() -> Arc<TicketState> {
        Arc::new(TicketState {
            outcome: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    /// Deliver the outcome and wake the waiter. Called exactly once.
    pub(crate) fn fulfill(&self, outcome: QueryOutcome) {
        let mut slot = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(slot.is_none(), "ticket fulfilled twice");
        *slot = Some(outcome);
        drop(slot);
        self.done.notify_all();
    }

    fn wait(&self) -> QueryOutcome {
        let slot = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
        let mut slot = self
            .done
            .wait_while(slot, |o| o.is_none())
            .unwrap_or_else(|e| e.into_inner());
        slot.take().expect("wait_while guarantees an outcome")
    }
}

/// Handle for one submitted query. Obtain with `QueryScheduler::submit`;
/// consume with [`QueryTicket::wait`].
///
/// Dropping a ticket without waiting is fine — the query still runs (the
/// scheduler never cancels admitted work), its outcome is simply discarded.
pub struct QueryTicket {
    pub(crate) state: Arc<TicketState>,
    pub(crate) id: u64,
    pub(crate) tenant: TenantId,
}

impl std::fmt::Debug for QueryTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryTicket")
            .field("id", &self.id)
            .field("tenant", &self.tenant)
            .finish_non_exhaustive()
    }
}

impl QueryTicket {
    /// The scheduler-assigned query id (admission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The tenant this query was submitted under.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Block until the query completes and take its [`QueryOutcome`].
    pub fn wait(self) -> QueryOutcome {
        self.state.wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(finish_seq: u64) -> QueryOutcome {
        QueryOutcome {
            tenant: "t".to_string(),
            priority: Priority::NORMAL,
            result: Ok(QueryResult::default()),
            queue_ms: 0.0,
            run_ms: 0.0,
            slot_wait_ms: 0.0,
            llm_calls: 0,
            incomplete: None,
            finish_seq,
        }
    }

    #[test]
    fn fulfill_then_wait_returns_outcome() {
        let state = TicketState::new();
        state.fulfill(outcome(7));
        let ticket = QueryTicket {
            state,
            id: 1,
            tenant: "t".to_string(),
        };
        assert_eq!(ticket.id(), 1);
        assert_eq!(ticket.tenant(), "t");
        assert_eq!(ticket.wait().finish_seq, 7);
    }

    #[test]
    fn wait_blocks_until_fulfilled() {
        let state = TicketState::new();
        let ticket = QueryTicket {
            state: Arc::clone(&state),
            id: 1,
            tenant: "t".to_string(),
        };
        let waiter = std::thread::spawn(move || ticket.wait().finish_seq);
        std::thread::sleep(std::time::Duration::from_millis(20));
        state.fulfill(outcome(3));
        assert_eq!(waiter.join().unwrap(), 3);
    }
}
