#![forbid(unsafe_code)]
//! # llmsql-sched
//!
//! The cross-query scheduler: the shared runtime that sits between client
//! sessions and one `llmsql_core::Engine`, arbitrating the engine's scarcest
//! resource — LLM-call slots — between many concurrent queries.
//!
//! PR 1 made a *single* query parallel and PR 2 gave it multiple backends;
//! neither stops two queries from dispatching `2 × parallelism` requests at
//! once. [`QueryScheduler`] closes that gap with three mechanisms:
//!
//! * **Admission control.** [`QueryScheduler::submit`] enqueues a query under
//!   a tenant and a [`llmsql_types::Priority`]. The queue is bounded
//!   globally ([`llmsql_types::SchedConfig::max_queue_depth`]) and per
//!   tenant ([`llmsql_types::SchedConfig::tenant_queue_cap`]); submissions
//!   beyond either cap are rejected immediately with a
//!   [`llmsql_types::ErrorKind::Scheduler`] error instead of piling up
//!   unbounded. A [`llmsql_types::SchedPolicy`] picks the next admitted
//!   query: FIFO, priority, or weighted fair share (per-tenant deficit
//!   counters charged with each query's completed LLM calls; the tenant with
//!   the smallest weight-normalized charge runs next, so completed-call
//!   shares converge to the configured weights under backlog and no tenant
//!   can starve another).
//!
//! * **Slot-based throttling.** The scheduler owns a global
//!   [`llmsql_exec::CallSlots`] pool of `llm_slots` call slots and attaches
//!   it to the engine; every scan worker of every running query takes a slot
//!   for exactly the duration of one model request. Global in-flight never
//!   exceeds the pool, *whatever* each query's `parallelism` is — and
//!   because waves are planned before slots are taken, throttling delays
//!   dispatch without changing any query's prompt set, rows, or logical
//!   call count (see the slot/ticket contract in [`llmsql_exec::slots`]).
//!
//! * **Per-query tickets.** [`submit`](QueryScheduler::submit) returns a
//!   [`QueryTicket`]; [`QueryTicket::wait`] blocks until the query ran and
//!   yields a [`QueryOutcome`] carrying the result plus queue time, run
//!   time, slot-wait time (from `ExecMetrics::slot_wait_ms`), LLM calls and
//!   the global completion ordinal — the accounting a billing or QoS layer
//!   needs per query.
//!
//! Backend *health* tracking (the circuit breaker that stops a hard-down
//! backend from costing retries on every request) lives one layer down, in
//! `llmsql_llm::backend`, enabled via `EngineConfig::with_circuit_breaker`;
//! the scheduler composes with it by simply running queries against an
//! engine so configured.
//!
//! # Failure-handling contract
//!
//! Three guarantees hold whenever the scheduler rejects or degrades work,
//! so callers can build retry loops and QoS layers on top without
//! second-guessing the runtime:
//!
//! * **Rejections are loss-less and self-describing.** A submission turned
//!   away at admission — per-tenant token-bucket throttle, watermark-based
//!   load shedding ([`llmsql_types::SchedConfig`]'s `shed_queue_watermark` /
//!   `shed_wait_watermark_ms`), a full global or tenant queue, or a
//!   hopeless-deadline projection — never started and consumed no LLM
//!   calls; resubmitting it is always safe. Every one of these rejections
//!   carries a `retry_after_ms` hint
//!   ([`llmsql_types::Error::retry_after_ms`]): structurally for throttle
//!   and shed ([`llmsql_types::ErrorKind::Overloaded`]), attached for
//!   queue-full and deadline rejections — one shape for all backoff loops.
//!   Shedding drops strictly-lower-priority work first and is counted in
//!   [`SchedStats::shed`] / [`SchedStats::throttled`] (both also in
//!   `rejected`), so `rejected` always equals the rejection errors handed
//!   out.
//!
//! * **Retries and hedges are budget-free.** Fault recovery below the
//!   scheduler (backend retries, hedged requests, failover) never consumes
//!   a query's logical call budget or a tenant's call bucket: buckets and
//!   deficit counters are charged with *logical* calls
//!   (`ExecMetrics::llm_calls`), never physical attempts.
//!
//! * **Partial results are deterministic and labelled.** With
//!   `EngineConfig::with_partial_results`, a query cut short by a lapsed
//!   deadline or a mid-query backend loss resolves `Ok` with an exact
//!   page-aligned prefix of the full answer and a
//!   [`llmsql_types::Incomplete`] marker (surfaced on
//!   [`QueryOutcome::incomplete`]) naming the fault and the rows/calls
//!   spent; the prefix a given cut produces is a function of the completed
//!   pages, never of scheduling interleavings.
//!
//! **Workers park on one shared reactor, not inside calls.** The scheduler
//! attaches a single [`llmsql_exec::SharedReactor`] to the engine, so every
//! worker's scan waves land on *one* deployment-wide event loop whenever the
//! model supports non-blocking submission: a worker submits its whole wave
//! and either drives the loop (first in wins the driver seat, servicing
//! *all* queries' completions until its own wave resolves) or parks on a
//! condvar until a driver resolves its wave for it. Completions from
//! different queries therefore interleave on one clock, `llm_slots` is the
//! only deployment-wide in-flight ceiling, and 64 slots on 4 workers is the
//! normal shape — not 64 blocked threads (`examples/async_dispatch.rs`
//! measures exactly this). Slot waits in that mode are parked-and-polled
//! rather than blocked, but surface in the same
//! `SchedStats::total_slot_wait_ms` / `ExecMetrics::slot_wait_ms`
//! accounting. With a blocking-only model the per-request worker threads
//! come back (the compat path) and every guarantee above still holds.
//!
//! The global view buys two cross-query optimizations, both accounted in
//! [`SchedStats`]:
//!
//! * **Prompt coalescing** (`llmsql_llm::PromptCoalescer`, attached by the
//!   scheduler): identical in-flight `(fingerprint, prompt, params)` calls
//!   from different queries collapse into one physical request whose answer
//!   fans out to every waiter. Followers are charged their query's *logical*
//!   call budget but issue zero physical requests
//!   ([`SchedStats::coalesced_calls`]).
//! * **Tuple batching** (`EngineConfig::batch_rows_per_call`): where the
//!   scan strategy allows, up to that many per-tuple prompts pack into one
//!   request and the structured answer is split back per row — rows and
//!   logical call counts are byte-identical at any batch size
//!   ([`SchedStats::batched_rows`]).
//!
//! ```
//! use llmsql_core::Engine;
//! use llmsql_sched::QueryScheduler;
//! use llmsql_types::{EngineConfig, ExecutionMode, Priority, SchedConfig};
//!
//! let mut engine = Engine::new(EngineConfig::default().with_mode(ExecutionMode::Traditional));
//! engine.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)").unwrap();
//! engine.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
//!
//! let sched = QueryScheduler::new(engine, SchedConfig::default()).unwrap();
//! let ticket = sched
//!     .submit("tenant-a", Priority::NORMAL, "SELECT COUNT(*) FROM t")
//!     .unwrap();
//! let outcome = ticket.wait();
//! assert_eq!(outcome.result.unwrap().scalar(), Some(llmsql_types::Value::Int(3)));
//! ```

#![warn(missing_docs)]

mod ratelimit;
mod scheduler;
mod ticket;

pub use ratelimit::{TenantLimiter, TokenBucket};
pub use scheduler::{QueryScheduler, SchedStats};
pub use ticket::{QueryOutcome, QueryTicket};
