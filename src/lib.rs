#![forbid(unsafe_code)]
//! Workspace facade: re-exports the public surface of every `llmsql-*`
//! crate so integration tests, examples and downstream users can depend on
//! one crate.

pub use llmsql_core as core;
pub use llmsql_exec as exec;
pub use llmsql_llm as llm;
pub use llmsql_plan as plan;
pub use llmsql_sched as sched;
pub use llmsql_sql as sql;
pub use llmsql_store as store;
pub use llmsql_types as types;
pub use llmsql_workload as workload;

pub use llmsql_core::{render_explain, Engine};
pub use llmsql_plan::{
    cost_plan, lint_plan, optimize_traced, CostParams, OptimizerOptions, PlanCost, PlanDiagnostic,
    RuleTrace, Severity,
};
pub use llmsql_sched::{QueryOutcome, QueryScheduler, QueryTicket, SchedStats};
pub use llmsql_types::{
    ChaosFault, ChaosPlan, ChaosWindow, EngineConfig, ErrorKind, ExecutionMode, Incomplete,
    LlmFidelity, Priority, PromptStrategy, Result, RoutingPolicy, SchedConfig, SchedPolicy,
    TenantRateLimit,
};
