//! End-to-end integration tests spanning every crate: SQL text in, scored
//! answers out, across execution modes and prompting strategies.

use llmsql_core::{score_batches, Engine, EvalOptions};
use llmsql_store::{degrade_catalog, DegradeSpec};
use llmsql_types::{EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy, Value};
use llmsql_workload::{run_suite, standard_suite, World, WorldSpec};

fn world() -> World {
    World::generate(WorldSpec {
        countries: 25,
        cities_per_country: 3,
        people: 40,
        movies: 30,
        seed: 41,
    })
    .unwrap()
}

/// At perfect fidelity, every prompting strategy except one-shot full-query
/// must reproduce the oracle answer exactly for the whole mixed suite.
#[test]
fn perfect_fidelity_is_lossless_for_all_decomposed_strategies() {
    let w = world();
    let oracle = w.oracle_engine();
    let suite = standard_suite(&w, 3);
    for strategy in [
        PromptStrategy::BatchedRows,
        PromptStrategy::TupleAtATime,
        PromptStrategy::DecomposedOperators,
    ] {
        let subject = w
            .subject_engine(
                EngineConfig::default()
                    .with_mode(ExecutionMode::LlmOnly)
                    .with_strategy(strategy)
                    .with_fidelity(LlmFidelity::perfect()),
            )
            .unwrap();
        let outcome = run_suite(&oracle, &subject, &suite, &EvalOptions::exact()).unwrap();
        let overall = outcome.overall();
        assert!(
            overall.f1() > 0.999,
            "strategy {strategy} lost accuracy: F1 = {}",
            overall.f1()
        );
    }
}

/// Full-query prompting at perfect fidelity answers single-table queries
/// exactly (joins/aggregates may legitimately diverge through the one-shot
/// interpreter, which is part of what E2 measures).
#[test]
fn full_query_strategy_handles_single_table_queries() {
    let w = world();
    let oracle = w.oracle_engine();
    let subject = w
        .subject_engine(
            EngineConfig::default()
                .with_mode(ExecutionMode::LlmOnly)
                .with_strategy(PromptStrategy::FullQuery)
                .with_fidelity(LlmFidelity::perfect()),
        )
        .unwrap();
    for sql in [
        "SELECT name, capital FROM countries WHERE region = 'Europe'",
        "SELECT name FROM people WHERE profession = 'scientist'",
        "SELECT title, rating FROM movies WHERE rating > 5.0",
    ] {
        let truth = oracle.execute(sql).unwrap();
        let answer = subject.execute(sql).unwrap();
        let score = score_batches(&answer.batch, &truth.batch, &EvalOptions::exact());
        assert!(score.exact, "query '{sql}' diverged: {score:?}");
        assert_eq!(answer.metrics.llm_calls(), 1, "full-query must be one call");
    }
}

/// Accuracy is monotone in model quality (weak < strong <= perfect) on the
/// standard suite.
#[test]
fn accuracy_improves_with_model_quality() {
    let w = world();
    let oracle = w.oracle_engine();
    let suite = standard_suite(&w, 3);
    let mut f1s = Vec::new();
    for fidelity in [
        LlmFidelity::weak(),
        LlmFidelity::strong(),
        LlmFidelity::perfect(),
    ] {
        let subject = w
            .subject_engine(
                EngineConfig::default()
                    .with_mode(ExecutionMode::LlmOnly)
                    .with_fidelity(fidelity),
            )
            .unwrap();
        let outcome = run_suite(&oracle, &subject, &suite, &EvalOptions::exact()).unwrap();
        f1s.push(outcome.overall().f1());
    }
    assert!(
        f1s[0] < f1s[1],
        "weak {} should be below strong {}",
        f1s[0],
        f1s[1]
    );
    assert!(
        f1s[1] <= f1s[2] + 1e-9,
        "strong {} should not beat perfect {}",
        f1s[1],
        f1s[2]
    );
    assert!(f1s[2] > 0.999);
}

/// Hybrid execution over a degraded store recovers accuracy that traditional
/// execution over the same store has lost.
#[test]
fn hybrid_execution_recovers_missing_values() {
    let w = world();
    let oracle = w.oracle_engine();
    let (degraded, report) = degrade_catalog(&w.catalog, &DegradeSpec::nulls(0.5, 17)).unwrap();
    assert!(report.nulled_values > 50);

    let sql = "SELECT name, capital FROM countries WHERE region = 'Europe'";
    let truth = oracle.execute(sql).unwrap();

    let traditional = Engine::with_catalog(
        degraded.clone(),
        EngineConfig::default().with_mode(ExecutionMode::Traditional),
    );
    let hybrid = w
        .subject_engine_with_catalog(
            degraded,
            EngineConfig::default()
                .with_mode(ExecutionMode::Hybrid)
                .with_fidelity(LlmFidelity::perfect()),
        )
        .unwrap();

    let damaged_score = score_batches(
        &traditional.execute(sql).unwrap().batch,
        &truth.batch,
        &EvalOptions::exact(),
    );
    let hybrid_result = hybrid.execute(sql).unwrap();
    let hybrid_score = score_batches(&hybrid_result.batch, &truth.batch, &EvalOptions::exact());

    assert!(hybrid_score.f1 >= damaged_score.f1);
    assert!(
        hybrid_score.exact,
        "perfect-fidelity hybrid must restore the answer"
    );
    assert!(hybrid_result.metrics.cells_filled_by_llm > 0);
}

/// The prompt cache spares repeat calls without changing answers.
#[test]
fn prompt_cache_reduces_calls_but_not_answers() {
    let w = world();
    let subject = w
        .subject_engine(
            EngineConfig::default()
                .with_mode(ExecutionMode::LlmOnly)
                .with_fidelity(LlmFidelity::strong()),
        )
        .unwrap();
    let sql = "SELECT name, population FROM countries WHERE population > 1000000";
    let first = subject.execute(sql).unwrap();
    let second = subject.execute(sql).unwrap();
    assert_eq!(first.batch, second.batch);
    assert!(first.usage.calls > 0);
    // The second run is served from the cache: no new model calls.
    assert_eq!(second.usage.calls, 0);
    assert!(second.usage.cache_hits > 0);
}

/// Pushing predicates and projections into prompts reduces model calls and
/// tokens without reducing accuracy at perfect fidelity (the E9 claim).
#[test]
fn optimizer_rules_reduce_model_traffic() {
    let w = world();
    let oracle = w.oracle_engine();
    let suite = standard_suite(&w, 2);

    let run = |pushdown: bool, pruning: bool| {
        let mut config = EngineConfig::default()
            .with_mode(ExecutionMode::LlmOnly)
            .with_fidelity(LlmFidelity::perfect());
        config.enable_predicate_pushdown = pushdown;
        config.enable_projection_pruning = pruning;
        config.enable_prompt_cache = false;
        let subject = w.subject_engine(config).unwrap();
        let outcome = run_suite(&oracle, &subject, &suite, &EvalOptions::exact()).unwrap();
        (
            outcome.overall().f1(),
            outcome.total_llm_calls(),
            outcome.total_tokens(),
        )
    };

    let (f1_on, calls_on, tokens_on) = run(true, true);
    let (f1_off, calls_off, tokens_off) = run(false, false);
    assert!(f1_on > 0.999 && f1_off > 0.999);
    assert!(
        calls_on <= calls_off,
        "optimized {calls_on} calls vs unoptimized {calls_off}"
    );
    assert!(
        tokens_on < tokens_off,
        "optimized {tokens_on} tokens vs unoptimized {tokens_off}"
    );
}

/// The engine's usage accounting matches the client's: token and cost totals
/// reported per query sum to the client's cumulative numbers.
#[test]
fn usage_accounting_is_consistent() {
    let w = world();
    let subject = w
        .subject_engine(
            EngineConfig::default()
                .with_mode(ExecutionMode::LlmOnly)
                .with_fidelity(LlmFidelity::strong()),
        )
        .unwrap();
    let queries = [
        "SELECT name FROM countries WHERE region = 'Asia'",
        "SELECT name, population FROM cities WHERE population > 100000",
        "SELECT COUNT(*) FROM people",
    ];
    let mut sum_calls = 0;
    let mut sum_tokens = 0;
    for sql in queries {
        let r = subject.execute(sql).unwrap();
        sum_calls += r.usage.calls;
        sum_tokens += r.usage.total_tokens();
    }
    let total = subject.client().unwrap().usage();
    assert_eq!(total.calls, sum_calls);
    assert_eq!(total.total_tokens(), sum_tokens);
}

/// Traditional mode over the oracle catalog answers exactly and never calls
/// the model, even when a model is attached.
#[test]
fn traditional_mode_never_calls_the_model() {
    let w = world();
    let mut engine = Engine::with_catalog(
        w.catalog.clone(),
        EngineConfig::default().with_mode(ExecutionMode::Traditional),
    );
    engine.attach_simulator(w.knowledge().unwrap()).unwrap();
    let r = engine
        .execute("SELECT region, COUNT(*) FROM countries GROUP BY region")
        .unwrap();
    assert!(r.row_count() > 0);
    assert_eq!(r.metrics.llm_calls(), 0);
    assert_eq!(r.usage.calls, 0);
}

/// DDL + DML + query flow built from scratch through the public API, ending
/// with an LLM-backed query over a virtual table defined in SQL.
#[test]
fn virtual_table_declared_in_sql_is_answered_by_the_model() {
    let w = world();
    let mut engine = Engine::new(
        EngineConfig::default()
            .with_mode(ExecutionMode::LlmOnly)
            .with_fidelity(LlmFidelity::perfect()),
    );
    engine.attach_simulator(w.knowledge().unwrap()).unwrap();
    // Declare a virtual relation matching (a subset of) the model's knowledge.
    engine
        .execute(
            "CREATE VIRTUAL TABLE countries (
                name TEXT PRIMARY KEY COMMENT 'the short English name of the country',
                region TEXT COMMENT 'the continent or world region',
                population INTEGER COMMENT 'the total population'
             ) COMMENT 'countries of the synthetic world atlas'",
        )
        .unwrap();
    let r = engine
        .execute("SELECT name FROM countries WHERE region = 'Europe'")
        .unwrap();
    assert!(r.row_count() > 0);
    assert!(r.metrics.llm_calls() > 0);
    // Every returned name is a real country of the world.
    let truth: Vec<Value> = w
        .catalog
        .table("countries")
        .unwrap()
        .scan()
        .iter()
        .map(|row| row.get(0).clone())
        .collect();
    for row in r.rows() {
        assert!(truth.contains(row.get(0)), "hallucinated {:?}", row.get(0));
    }
}
