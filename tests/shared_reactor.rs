//! Acceptance scenarios for the shared deployment reactor: cross-query
//! prompt coalescing, tuple batching, and the determinism contract — rows
//! and per-query logical call counts are byte-identical whatever the batch
//! size and whether or not the shared reactor/coalescer are attached.

use std::sync::Arc;

use llmsql_bench::batched_tuple_scan_engine;
use llmsql_core::Engine;
use llmsql_exec::SharedReactor;
use llmsql_llm::PromptCoalescer;
use llmsql_sched::{QueryScheduler, QueryTicket};
use llmsql_types::{Priority, SchedConfig};

const SCAN_SQL: &str = "SELECT name, population FROM countries";

/// Attach a private shared reactor + coalescer to `engine` (what the
/// scheduler does deployment-wide, here on a standalone engine).
fn with_shared_dispatch(mut engine: Engine) -> Engine {
    engine.set_shared_reactor(Arc::new(SharedReactor::default()));
    engine.set_prompt_coalescer(Arc::new(PromptCoalescer::new()));
    engine
}

// ---------------------------------------------------------------------------
// Determinism: batching and the shared reactor never change answers
// ---------------------------------------------------------------------------

#[test]
fn batch_size_never_changes_rows_or_logical_calls() {
    // The unbatched engine is the reference; every batch size must produce
    // byte-identical rows and the same logical call count — batching only
    // changes how many physical requests carry them.
    let reference = batched_tuple_scan_engine(40, 8, 1, 0.5)
        .expect("valid batched scan engine")
        .execute(SCAN_SQL)
        .unwrap();
    assert_eq!(reference.row_count(), 40);
    for batch in [1, 3, 16] {
        let engine =
            batched_tuple_scan_engine(40, 8, batch, 0.5).expect("valid batched scan engine");
        let result = engine.execute(SCAN_SQL).unwrap();
        assert_eq!(result.rows(), reference.rows(), "batch {batch}");
        assert_eq!(
            result.metrics.llm_calls(),
            reference.metrics.llm_calls(),
            "batch {batch}"
        );
        if batch > 1 {
            assert!(
                result.metrics.batched_rows > 0,
                "batch {batch} never packed a request"
            );
            assert!(
                engine.client().unwrap().usage().calls < reference.metrics.llm_calls(),
                "batch {batch} issued as many physical calls as unbatched"
            );
        }
    }
}

#[test]
fn shared_reactor_on_vs_off_is_byte_identical() {
    for batch in [1, 3, 16] {
        let solo = batched_tuple_scan_engine(40, 8, batch, 0.5).expect("valid batched scan engine");
        let baseline = solo.execute(SCAN_SQL).unwrap();
        let shared_engine = with_shared_dispatch(
            batched_tuple_scan_engine(40, 8, batch, 0.5).expect("valid batched scan engine"),
        );
        let shared = shared_engine.execute(SCAN_SQL).unwrap();
        assert_eq!(shared.rows(), baseline.rows(), "batch {batch}");
        assert_eq!(
            shared.metrics.llm_calls(),
            baseline.metrics.llm_calls(),
            "batch {batch}"
        );
    }
}

#[test]
fn blocking_and_reactor_paths_agree() {
    // Zero simulated latency forces the blocking par_map path; positive
    // latency takes the reactor path. Same rows, same logical calls.
    let blocking = batched_tuple_scan_engine(30, 4, 3, 0.0)
        .expect("valid batched scan engine")
        .execute(SCAN_SQL)
        .unwrap();
    let reactor = batched_tuple_scan_engine(30, 4, 3, 0.5)
        .expect("valid batched scan engine")
        .execute(SCAN_SQL)
        .unwrap();
    assert_eq!(blocking.rows(), reactor.rows());
    assert_eq!(blocking.metrics.llm_calls(), reactor.metrics.llm_calls());
}

// ---------------------------------------------------------------------------
// Acceptance: 8 concurrent queries, 64-prompt working set, batch 4
// ---------------------------------------------------------------------------

#[test]
fn concurrent_identical_queries_coalesce_below_0_3x_physical() {
    // Baseline: one query, unbatched, no coalescer — the physical cost one
    // client pays alone. 8 such queries would pay 8× that.
    let solo = batched_tuple_scan_engine(64, 8, 1, 4.0).expect("valid batched scan engine");
    let baseline = solo.execute(SCAN_SQL).unwrap();
    let baseline_calls = solo.client().unwrap().usage().calls;
    assert!(baseline_calls >= 64, "64 tuples need at least 64 lookups");
    let unshared_total = 8 * baseline_calls;

    // Subject: the same 64-prompt working set, 8 identical queries released
    // simultaneously on one scheduler — shared reactor, coalescer, and 4
    // tuples packed per physical request.
    let sched = QueryScheduler::new(
        batched_tuple_scan_engine(64, 8, 4, 4.0).expect("valid batched scan engine"),
        SchedConfig::default()
            .with_workers(8)
            .with_llm_slots(64)
            .paused(),
    )
    .unwrap();
    let tickets: Vec<QueryTicket> = (0..8)
        .map(|i| {
            sched
                .submit(format!("tenant-{}", i % 2), Priority::NORMAL, SCAN_SQL)
                .unwrap()
        })
        .collect();
    sched.resume();
    for ticket in tickets {
        let outcome = ticket.wait();
        let result = outcome.result.unwrap();
        // Every query sees the full, byte-identical answer and is charged
        // its full logical budget regardless of who issued the physical
        // request that served it.
        assert_eq!(result.rows(), baseline.rows());
        assert_eq!(outcome.llm_calls, baseline.metrics.llm_calls());
    }

    let physical = sched.engine().client().unwrap().usage().calls;
    assert!(
        (physical as f64) <= 0.3 * unshared_total as f64,
        "physical calls {physical} not ≤ 0.3 × unshared baseline {unshared_total}"
    );

    let stats = sched.stats();
    assert!(stats.coalesced_calls > 0, "no cross-query coalescing fired");
    assert!(stats.batched_rows > 0, "no tuple batching fired");
}
