//! Acceptance scenarios for the fault-robustness layer: the seeded chaos
//! harness (faults never change answers, retry spend stays bounded, the
//! same seed reproduces the same per-backend counters), admission-time
//! overload shedding with structured retry-after rejections, and
//! partial-result graceful degradation.

use llmsql_bench::parallel_scan_engine;
use llmsql_core::Engine;
use llmsql_llm::KnowledgeBase;
use llmsql_sched::{QueryScheduler, QueryTicket};
use llmsql_store::Catalog;
use llmsql_types::{
    BackendSpec, ChaosFault, ChaosPlan, Column, DataType, EngineConfig, ErrorKind, ExecutionMode,
    LlmFidelity, Priority, PromptStrategy, RoutingPolicy, Row, SchedConfig, Schema,
    TenantRateLimit, Value,
};
use llmsql_workload::run_chaos_suite;

const SCAN_SQL: &str = "SELECT name, population FROM countries";

// ---------------------------------------------------------------------------
// Chaos harness
// ---------------------------------------------------------------------------

#[test]
fn chaos_suite_invariants_hold_end_to_end() {
    // The canonical scenario: 200-row scan at parallelism 8 over 4 backends,
    // one seeded plan scheduling a hard-down outage + 20x latency storm +
    // error burst.
    let outcome = run_chaos_suite(7).unwrap();
    outcome.verify().unwrap();

    // Rows are byte-identical to the no-chaos run while faults were really
    // injected and absorbed.
    assert_eq!(outcome.absorbed.batch.rows, outcome.baseline.batch.rows);
    assert!(outcome.deterministic_first.errors > 0, "no faults fired");
    assert!(outcome.absorbed.attempts <= outcome.attempt_ceiling);
    // Same seed, fresh engine: identical per-backend accounting.
    assert_eq!(
        outcome.deterministic_first.backend_stats,
        outcome.deterministic_second.backend_stats
    );
    // A different seed shuffles the fault schedule (the harness is seeded,
    // not hard-coded) — but the rows still never change.
    let other = run_chaos_suite(8).unwrap();
    other.verify().unwrap();
    assert_eq!(other.baseline.batch.rows.len(), 200);
}

// ---------------------------------------------------------------------------
// Overload shedding at admission
// ---------------------------------------------------------------------------

#[test]
fn overload_flood_sheds_low_priority_with_exact_counters() {
    // Flood past llm_slots with mixed-priority tenants: 2 slots, queries at
    // parallelism 4. Paused admission builds the backlog deterministically.
    let sched = QueryScheduler::new(
        parallel_scan_engine(60, 4, 2.0),
        SchedConfig::default()
            .with_workers(2)
            .with_llm_slots(2)
            .with_shed_queue_watermark(4)
            .with_tenant_rate_limit("bulk", TenantRateLimit::queries(1.0, 2.0))
            .paused(),
    )
    .unwrap();

    // The metered bulk tenant bursts 2 admissions, then is throttled.
    let mut admitted: Vec<QueryTicket> = Vec::new();
    let mut throttled = 0u64;
    for _ in 0..4 {
        match sched.submit("bulk", Priority::LOW, SCAN_SQL) {
            Ok(ticket) => admitted.push(ticket),
            Err(err) => {
                assert!(err.is_overloaded(), "{err}");
                assert!(err.retry_after_ms().unwrap() > 0);
                throttled += 1;
            }
        }
    }
    assert_eq!(throttled, 2, "burst 2 at 1 qps");

    // Fill past the shed watermark with normal-priority tenants.
    for i in 0..4 {
        admitted.push(
            sched
                .submit(format!("tenant-{i}"), Priority::NORMAL, SCAN_SQL)
                .unwrap(),
        );
    }
    // Low-priority submissions are now shed — with the structured shape.
    let mut shed = 0u64;
    for _ in 0..3 {
        let err = sched.submit("louder", Priority::LOW, SCAN_SQL).unwrap_err();
        assert!(err.is_overloaded(), "{err}");
        assert!(err.retry_after_ms().unwrap() > 0);
        assert!(err.message.contains("shed at admission"), "{err}");
        shed += 1;
    }
    // High-priority work with a deadline still gets in past the watermark.
    let vip = sched
        .submit_with_deadline("vip", Priority::HIGH, SCAN_SQL, 60_000.0)
        .unwrap();

    sched.resume();
    let vip_outcome = vip.wait();
    assert!(
        vip_outcome.result.is_ok(),
        "admitted high-priority query must complete within its deadline: {:?}",
        vip_outcome.result.err()
    );
    assert!(vip_outcome.queue_ms + vip_outcome.run_ms < 60_000.0);
    for ticket in admitted {
        assert!(ticket.wait().result.is_ok());
    }

    // Shed/throttle counters match the rejections handed out exactly.
    let stats = sched.stats();
    assert_eq!(stats.throttled, throttled);
    assert_eq!(stats.shed, shed);
    assert_eq!(stats.rejected, throttled + shed);
    assert_eq!(stats.deadline_expired, 0);
    assert_eq!(stats.completed, stats.submitted);
}

// ---------------------------------------------------------------------------
// Partial-result graceful degradation
// ---------------------------------------------------------------------------

fn countries_world(rows: usize) -> (Catalog, KnowledgeBase) {
    let schema = Schema::virtual_table(
        "countries",
        vec![
            Column::new("name", DataType::Text).primary_key(),
            Column::new("population", DataType::Int),
        ],
    );
    let data: Vec<Row> = (0..rows)
        .map(|i| {
            Row::new(vec![
                Value::Text(format!("Country {i:03}")),
                Value::Int(1_000 + i as i64),
            ])
        })
        .collect();
    let catalog = Catalog::new();
    catalog.create_virtual_table(schema.clone()).unwrap();
    let mut kb = KnowledgeBase::new();
    kb.add_table(schema, data);
    (catalog, kb)
}

fn chaos_config() -> EngineConfig {
    let mut config = EngineConfig::default()
        .with_mode(ExecutionMode::LlmOnly)
        .with_strategy(PromptStrategy::BatchedRows)
        .with_fidelity(LlmFidelity::perfect())
        .with_batch_size(10)
        .with_seed(3)
        .with_parallelism(2)
        .with_routing_policy(RoutingPolicy::PromptHash)
        .with_backends(vec![BackendSpec::new("edge-a"), BackendSpec::new("edge-b")]);
    config.enable_prompt_cache = false;
    config.backend_backoff_ms = 0.0;
    config
}

#[test]
fn total_backend_loss_degrades_to_a_partial_result() {
    // Every backend is down for the whole horizon: with partial results on,
    // the query degrades to an empty page-aligned prefix with a structured
    // marker instead of failing.
    let blackout = ChaosPlan::new(5, 1_000)
        .with_window("edge-a", ChaosFault::Outage, 0, 1_000)
        .with_window("edge-b", ChaosFault::Outage, 0, 1_000);

    let (catalog, kb) = countries_world(30);
    let strict_config = chaos_config().with_chaos(blackout.clone());
    let mut strict = Engine::with_catalog(catalog.deep_clone().unwrap(), strict_config);
    strict.attach_simulator(kb.clone().into_shared()).unwrap();
    let err = strict.execute(SCAN_SQL).unwrap_err();
    assert_eq!(err.kind, ErrorKind::Llm, "{err}");

    let graceful_config = chaos_config().with_chaos(blackout).with_partial_results();
    let mut graceful = Engine::with_catalog(catalog, graceful_config);
    graceful.attach_simulator(kb.into_shared()).unwrap();
    let result = graceful.execute(SCAN_SQL).unwrap();
    assert!(result.is_partial());
    assert_eq!(result.row_count(), 0, "no page completed under blackout");
    let marker = result.incomplete().unwrap();
    assert_eq!(marker.kind, ErrorKind::Llm);
    assert_eq!(marker.rows_delivered, 0);
}

#[test]
fn lapsed_deadline_yields_a_deterministic_page_aligned_prefix() {
    // A deadline that lapses immediately cuts the scan before the first
    // wave: zero rows, zero calls, marker names the deadline — and the
    // outcome is identical run over run (deterministic page boundary).
    let (catalog, kb) = countries_world(30);
    let mut engine = Engine::with_catalog(catalog, chaos_config().with_partial_results());
    engine.attach_simulator(kb.into_shared()).unwrap();
    for _ in 0..2 {
        let result = engine.execute_with_deadline(SCAN_SQL, 0.000_001).unwrap();
        assert!(result.is_partial());
        assert_eq!(result.row_count(), 0);
        let marker = result.incomplete().unwrap();
        assert_eq!(marker.kind, ErrorKind::DeadlineExceeded);
        assert_eq!(marker.rows_delivered, 0);
        assert_eq!(marker.calls_spent, 0);
    }
}

#[test]
fn partial_results_change_nothing_on_a_healthy_run() {
    // Opting in must be free: a run that never hits a fault returns the
    // complete answer with no marker, byte-identical to the strict engine.
    let (catalog, kb) = countries_world(30);
    let mut strict = Engine::with_catalog(catalog.deep_clone().unwrap(), chaos_config());
    strict.attach_simulator(kb.clone().into_shared()).unwrap();
    let baseline = strict.execute(SCAN_SQL).unwrap();

    let mut graceful = Engine::with_catalog(catalog, chaos_config().with_partial_results());
    graceful.attach_simulator(kb.into_shared()).unwrap();
    let result = graceful.execute(SCAN_SQL).unwrap();
    assert!(!result.is_partial());
    assert!(result.incomplete().is_none());
    assert_eq!(result.rows(), baseline.rows());
    assert_eq!(result.metrics.llm_calls(), baseline.metrics.llm_calls());
}

// ---------------------------------------------------------------------------
// Cross-query coalescing under chaos
// ---------------------------------------------------------------------------

#[test]
fn coalescing_stays_deterministic_through_an_error_burst() {
    // Shared-dispatch deployment under fire: an error burst takes every
    // edge-a attempt down for the whole horizon while 4 identical queries
    // run concurrently on one scheduler — shared reactor, cross-query
    // coalescer, retries absorbing the burst. A coalesced leader's failure
    // must abandon the in-flight entry (followers re-claim and retry), so
    // rows and per-query logical call counts stay byte-identical to the
    // fault-free single-query baseline.
    let (catalog, kb) = countries_world(40);
    let mut baseline_engine = Engine::with_catalog(catalog.deep_clone().unwrap(), chaos_config());
    baseline_engine
        .attach_simulator(kb.clone().into_shared())
        .unwrap();
    let baseline = baseline_engine.execute(SCAN_SQL).unwrap();

    let burst = ChaosPlan::new(13, 1_000).with_window(
        "edge-a",
        ChaosFault::ErrorBurst { error_rate: 1.0 },
        0,
        1_000,
    );
    let chaos_specs = vec![
        BackendSpec::new("edge-a").with_latency_ms(2.0),
        BackendSpec::new("edge-b").with_latency_ms(2.0),
    ];
    let mut engine = Engine::with_catalog(
        catalog,
        chaos_config().with_backends(chaos_specs).with_chaos(burst),
    );
    engine.attach_simulator(kb.into_shared()).unwrap();
    let sched = QueryScheduler::new(
        engine,
        SchedConfig::default()
            .with_workers(4)
            .with_llm_slots(16)
            .paused(),
    )
    .unwrap();
    let tickets: Vec<QueryTicket> = (0..4)
        .map(|_| {
            sched
                .submit("tenant-a", Priority::NORMAL, SCAN_SQL)
                .unwrap()
        })
        .collect();
    sched.resume();
    for ticket in tickets {
        let outcome = ticket.wait();
        let result = outcome.result.expect("burst must be absorbed by retries");
        assert_eq!(result.rows(), baseline.rows());
        assert_eq!(outcome.llm_calls, baseline.metrics.llm_calls());
    }
    assert!(
        sched.stats().coalesced_calls > 0,
        "identical concurrent queries never coalesced during the burst"
    );
}

#[test]
fn partial_scan_under_mid_horizon_outage_keeps_a_row_prefix() {
    // Only some pages fall in the outage window (virtual time is per-prompt):
    // the graceful engine keeps the completed pages as an exact prefix and
    // reports the calls spent when the first page failed.
    let outage = ChaosPlan::new(11, 1_000)
        .with_window("edge-a", ChaosFault::Outage, 0, 1_000)
        .with_window("edge-b", ChaosFault::Outage, 0, 600);

    let (catalog, kb) = countries_world(40);
    let mut config = chaos_config().with_chaos(outage).with_partial_results();
    // Sequential dispatch: pages are attempted strictly in order, so the
    // first failing page determines the prefix deterministically.
    config.parallelism = 1;
    let mut engine = Engine::with_catalog(catalog, config);
    engine.attach_simulator(kb.into_shared()).unwrap();
    let first = engine.execute(SCAN_SQL).unwrap();
    let second = engine.execute(SCAN_SQL).unwrap();
    // Deterministic: the same plan cuts at the same page boundary.
    assert_eq!(first.rows(), second.rows());
    assert_eq!(first.row_count() % 10, 0, "prefix must be page-aligned");
    if let Some(marker) = first.incomplete() {
        assert_eq!(marker.rows_delivered as usize, first.row_count());
        assert!(marker.calls_spent > 0);
    }
}
