//! Integration coverage of the SQL surface: every supported construct parsed,
//! planned and executed end to end in Traditional mode, checked against
//! hand-computed answers.

use llmsql_core::{Engine, EngineConfig, ExecutionMode, Value};

fn engine() -> Engine {
    let e = Engine::new(EngineConfig::default().with_mode(ExecutionMode::Traditional));
    e.execute_script(
        "CREATE TABLE dept (id INTEGER PRIMARY KEY, name TEXT NOT NULL, budget FLOAT);
         CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT, dept_id INTEGER, salary INTEGER, hired INTEGER);
         INSERT INTO dept VALUES (1, 'engineering', 1000.5), (2, 'sales', 500.0), (3, 'research', 750.25);
         INSERT INTO emp VALUES
            (1, 'ada', 1, 120, 2015),
            (2, 'grace', 1, 130, 2012),
            (3, 'alan', 2, 90, 2018),
            (4, 'edsger', 3, 110, 2010),
            (5, 'barbara', 1, 125, 2020),
            (6, 'donald', NULL, 95, 2016);",
    )
    .unwrap();
    e
}

fn ints(e: &Engine, sql: &str) -> Vec<i64> {
    e.execute(sql)
        .unwrap()
        .rows()
        .iter()
        .map(|r| r.get(0).as_int().unwrap())
        .collect()
}

fn texts(e: &Engine, sql: &str) -> Vec<String> {
    e.execute(sql)
        .unwrap()
        .rows()
        .iter()
        .map(|r| r.get(0).to_display_string())
        .collect()
}

#[test]
fn predicates_and_ordering() {
    let e = engine();
    assert_eq!(
        texts(
            &e,
            "SELECT name FROM emp WHERE salary >= 120 ORDER BY salary DESC"
        ),
        vec!["grace", "barbara", "ada"]
    );
    assert_eq!(
        texts(
            &e,
            "SELECT name FROM emp WHERE salary BETWEEN 90 AND 110 ORDER BY name"
        ),
        vec!["alan", "donald", "edsger"]
    );
    assert_eq!(
        texts(
            &e,
            "SELECT name FROM emp WHERE name LIKE '%a_a%' ORDER BY name"
        ),
        vec!["ada", "alan", "barbara"]
    );
    assert_eq!(
        texts(&e, "SELECT name FROM emp WHERE dept_id IS NULL"),
        vec!["donald"]
    );
    assert_eq!(
        texts(
            &e,
            "SELECT name FROM emp WHERE dept_id IN (2, 3) ORDER BY name"
        ),
        vec!["alan", "edsger"]
    );
    assert_eq!(
        texts(
            &e,
            "SELECT name FROM emp WHERE NOT (salary > 100) AND dept_id IS NOT NULL"
        ),
        vec!["alan"]
    );
}

#[test]
fn arithmetic_case_cast_concat() {
    let e = engine();
    assert_eq!(
        ints(&e, "SELECT salary * 2 + 1 FROM emp WHERE name = 'ada'"),
        vec![241]
    );
    let r = e
        .execute("SELECT CASE WHEN salary >= 120 THEN 'senior' ELSE 'junior' END FROM emp WHERE name = 'alan'")
        .unwrap();
    assert_eq!(r.scalar(), Some(Value::Text("junior".into())));
    let r = e
        .execute("SELECT CAST(budget AS INTEGER) FROM dept WHERE name = 'research'")
        .unwrap();
    assert_eq!(r.scalar(), Some(Value::Int(750)));
    let r = e
        .execute("SELECT name || '@corp' FROM emp WHERE id = 1")
        .unwrap();
    assert_eq!(r.scalar(), Some(Value::Text("ada@corp".into())));
}

#[test]
fn joins_inner_left_right_cross() {
    let e = engine();
    // inner join drops donald (NULL dept)
    assert_eq!(
        ints(
            &e,
            "SELECT COUNT(*) FROM emp e JOIN dept d ON e.dept_id = d.id"
        ),
        vec![5]
    );
    // left join keeps him
    assert_eq!(
        ints(
            &e,
            "SELECT COUNT(*) FROM emp e LEFT JOIN dept d ON e.dept_id = d.id"
        ),
        vec![6]
    );
    // right join keeps every department even if we filter employees
    assert_eq!(
        ints(
            &e,
            "SELECT COUNT(*) FROM emp e RIGHT JOIN dept d ON e.dept_id = d.id AND e.salary > 1000"
        ),
        vec![3]
    );
    assert_eq!(
        ints(&e, "SELECT COUNT(*) FROM emp CROSS JOIN dept"),
        vec![18]
    );
    // join + residual predicate + projection from both sides
    assert_eq!(
        texts(
            &e,
            "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id AND d.budget > 700 ORDER BY e.name"
        ),
        vec!["ada", "barbara", "edsger", "grace"]
    );
}

#[test]
fn aggregation_grouping_having() {
    let e = engine();
    let r = e
        .execute(
            "SELECT d.name, COUNT(*) AS headcount, AVG(e.salary) AS avg_salary
             FROM emp e JOIN dept d ON e.dept_id = d.id
             GROUP BY d.name HAVING COUNT(*) >= 1 ORDER BY headcount DESC, d.name",
        )
        .unwrap();
    assert_eq!(r.row_count(), 3);
    assert_eq!(r.rows()[0].get(0), &Value::Text("engineering".into()));
    assert_eq!(r.rows()[0].get(1), &Value::Int(3));
    assert_eq!(r.rows()[0].get(2), &Value::Float(125.0));

    assert_eq!(ints(&e, "SELECT COUNT(*) FROM emp"), vec![6]);
    assert_eq!(ints(&e, "SELECT COUNT(DISTINCT dept_id) FROM emp"), vec![3]);
    assert_eq!(ints(&e, "SELECT MIN(hired) FROM emp"), vec![2010]);
    assert_eq!(
        ints(&e, "SELECT MAX(salary) FROM emp WHERE dept_id = 2"),
        vec![90]
    );
    assert_eq!(ints(&e, "SELECT SUM(salary) FROM emp"), vec![670]);
}

#[test]
fn distinct_limit_offset_subquery() {
    let e = engine();
    assert_eq!(
        ints(
            &e,
            "SELECT DISTINCT dept_id FROM emp WHERE dept_id IS NOT NULL ORDER BY dept_id"
        )
        .len(),
        3
    );
    assert_eq!(
        texts(
            &e,
            "SELECT name FROM emp ORDER BY salary DESC LIMIT 2 OFFSET 1"
        ),
        vec!["barbara", "ada"]
    );
    assert_eq!(
        texts(
            &e,
            "SELECT rich.name FROM (SELECT name, salary FROM emp WHERE salary > 100) AS rich \
             WHERE rich.salary < 130 ORDER BY rich.name"
        ),
        vec!["ada", "barbara", "edsger"]
    );
}

#[test]
fn describe_explain_and_errors() {
    let e = engine();
    let d = e.execute("DESCRIBE dept").unwrap();
    assert_eq!(d.row_count(), 3);
    let x = e
        .execute("EXPLAIN SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id")
        .unwrap();
    let plan = x.plan.unwrap();
    assert!(plan.contains("JOIN"));
    assert!(plan.contains("Scan emp"));

    assert!(e.execute("SELECT nope FROM emp").is_err());
    assert!(e.execute("SELECT * FROM missing_table").is_err());
    assert!(e.execute("SELECT name FROM emp WHERE").is_err());
    assert!(e
        .execute("INSERT INTO dept VALUES (1, 'dup', 0.0)")
        .is_err());
}

#[test]
fn insert_update_visibility_and_null_handling() {
    let e = engine();
    e.execute("INSERT INTO emp (id, name, salary) VALUES (7, 'tony', 80)")
        .unwrap();
    assert_eq!(ints(&e, "SELECT COUNT(*) FROM emp"), vec![7]);
    // NULL dept_id does not join
    assert_eq!(
        ints(
            &e,
            "SELECT COUNT(*) FROM emp e JOIN dept d ON e.dept_id = d.id"
        ),
        vec![5]
    );
    // aggregates ignore NULL inputs
    assert_eq!(ints(&e, "SELECT COUNT(dept_id) FROM emp"), vec![5]);
    // three-valued logic: NULL <> 1 is unknown, row not returned
    assert_eq!(
        texts(&e, "SELECT name FROM emp WHERE dept_id <> 1 ORDER BY name"),
        vec!["alan", "edsger"]
    );
}
