//! End-to-end guarantees of the parallel scan pipeline: concurrent dispatch
//! must be faster than sequential dispatch when call latency dominates, while
//! producing identical rows and identical cost accounting.

use std::time::Instant;

use llmsql_bench::parallel_scan_engine;
use llmsql_core::QueryResult;

const SCAN_SQL: &str = "SELECT name, population FROM countries";

/// A 100-row batched scan (10 pages of 10) against a simulator with the
/// given per-call latency.
fn run_scan(parallelism: usize, latency_ms: f64) -> (QueryResult, f64) {
    let engine = parallel_scan_engine(100, parallelism, latency_ms);
    let start = Instant::now();
    let result = engine.execute(SCAN_SQL).unwrap();
    (result, start.elapsed().as_secs_f64() * 1000.0)
}

#[test]
fn four_way_dispatch_doubles_scan_throughput() {
    // 10 pages x 40ms sequential = 400ms+; 4-way slow-start dispatches them
    // in 4 waves (1+2+4+3), i.e. ~160ms of latency, a theoretical 2.5x. The
    // latency is set high enough that per-query CPU overhead (significant in
    // debug builds on a single core) cannot mask the win. Wall-clock ratios
    // jitter on loaded CI runners, so the 2x expectation gets three
    // attempts; a hard 1.5x floor then still catches any real regression
    // (losing the overlap entirely would put the ratio near 1.0).
    let mut last = (0.0, 0.0);
    for _attempt in 0..3 {
        let (sequential, seq_ms) = run_scan(1, 40.0);
        let (parallel, par_ms) = run_scan(4, 40.0);
        assert_eq!(sequential.row_count(), 100);
        assert_eq!(sequential.rows(), parallel.rows(), "rows diverged");
        if seq_ms >= 2.0 * par_ms {
            return;
        }
        last = (seq_ms, par_ms);
        eprintln!("timing attempt below 2x ({seq_ms:.1}ms vs {par_ms:.1}ms)");
    }
    assert!(
        last.0 >= 1.5 * last.1,
        "4-way dispatch shows no meaningful overlap: sequential {:.1}ms, parallel {:.1}ms",
        last.0,
        last.1
    );
}

#[test]
fn parallelism_does_not_inflate_cost_accounting() {
    let (sequential, _) = run_scan(1, 0.0);
    for parallelism in [4, 8] {
        let (parallel, _) = run_scan(parallelism, 0.0);
        assert_eq!(
            sequential.usage.calls, parallel.usage.calls,
            "call count changed at parallelism {parallelism}"
        );
        assert_eq!(sequential.usage.cache_hits, parallel.usage.cache_hits);
        assert_eq!(sequential.usage.prompt_tokens, parallel.usage.prompt_tokens);
        assert_eq!(
            sequential.usage.completion_tokens,
            parallel.usage.completion_tokens
        );
        // Cost totals sum identical per-call costs; only the accumulation
        // order differs across threads.
        assert!(
            (sequential.usage.cost_usd - parallel.usage.cost_usd).abs() < 1e-9,
            "cost diverged at parallelism {parallelism}"
        );
        assert_eq!(sequential.metrics.llm_calls(), parallel.metrics.llm_calls());
    }
}

#[test]
fn peak_in_flight_reflects_configured_fanout() {
    let (sequential, _) = run_scan(1, 0.0);
    assert_eq!(sequential.metrics.peak_in_flight, 1);
    let (parallel, _) = run_scan(4, 2.0);
    assert!(
        parallel.metrics.peak_in_flight > 1,
        "expected concurrent requests in flight, saw peak {}",
        parallel.metrics.peak_in_flight
    );
    assert!(parallel.metrics.peak_in_flight <= 4);
}
