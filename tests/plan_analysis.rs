//! Acceptance test for the static plan analyzer (ISSUE 9): on a seeded
//! pushdown scenario — a native predicate AND an LLM-text predicate over a
//! 1k-row relation — the optimized plan must return byte-identical rows
//! with measurably fewer LLM calls than the unoptimized plan, `EXPLAIN
//! ANALYZE` must report estimated vs. actual call counts for it, and each
//! seeded cost hazard must be flagged by exactly one plan lint.

use llmsql_core::Engine;
use llmsql_store::Catalog;
use llmsql_types::{EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy, Row};

const ROWS: usize = 1000;

/// The seeded pushdown query: `score > 900` is the cheap native predicate,
/// the `LIKE` over free text is the kind of predicate only the model can
/// answer on a virtual relation.
const PUSHDOWN_SQL: &str =
    "SELECT id, category, score, notes FROM items WHERE score > 900 AND notes LIKE '%ore%'";

/// A 1k-row relation with a selective numeric column and a text column.
fn seeded_catalog() -> Catalog {
    let oracle = Engine::new(EngineConfig::default().with_mode(ExecutionMode::Traditional));
    oracle
        .execute(
            "CREATE TABLE items (id INTEGER PRIMARY KEY, category TEXT, score INTEGER, notes TEXT)",
        )
        .unwrap();
    let categories = ["ore", "gas", "crop", "wood"];
    let mut values = Vec::with_capacity(ROWS);
    for i in 0..ROWS {
        let cat = categories[i % categories.len()];
        values.push(format!(
            "({}, '{}', {}, 'lot {} of {}')",
            i,
            cat,
            (i * 7919) % 1000,
            i,
            cat
        ));
    }
    oracle
        .execute(&format!("INSERT INTO items VALUES {}", values.join(", ")))
        .unwrap();
    oracle.catalog().deep_clone().unwrap()
}

/// An LLM-only engine over the seeded catalog, perfect fidelity so answers
/// are comparable byte-for-byte.
fn llm_engine(catalog: &Catalog, configure: impl FnOnce(EngineConfig) -> EngineConfig) -> Engine {
    let config = configure(
        EngineConfig::default()
            .with_mode(ExecutionMode::LlmOnly)
            .with_strategy(PromptStrategy::BatchedRows)
            .with_fidelity(LlmFidelity::perfect()),
    );
    let kb = Engine::knowledge_from_catalog(catalog).unwrap();
    let mut engine = Engine::with_catalog(catalog.deep_clone().unwrap(), config);
    engine.attach_simulator(kb.into_shared()).unwrap();
    engine
}

fn disable_optimizer(mut config: EngineConfig) -> EngineConfig {
    config.enable_optimizer = false;
    config.enable_predicate_pushdown = false;
    config.enable_projection_pruning = false;
    config
}

fn sorted_debug(rows: &[Row]) -> Vec<String> {
    let mut out: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    out.sort();
    out
}

/// Count how many lint diagnostic lines an EXPLAIN text carries, and how
/// many mention the given rule.
fn lint_lines(plan_text: &str) -> Vec<&str> {
    plan_text
        .lines()
        .filter(|l| {
            l.starts_with("critical:") || l.starts_with("warning:") || l.starts_with("info:")
        })
        .collect()
}

fn explain(engine: &Engine, sql: &str) -> String {
    let result = engine.execute(&format!("EXPLAIN {sql}")).unwrap();
    result.plan.expect("EXPLAIN must return plan text")
}

#[test]
fn pushdown_scenario_same_rows_fewer_calls() {
    let catalog = seeded_catalog();
    let optimized = llm_engine(&catalog, |c| c);
    let unoptimized = llm_engine(&catalog, disable_optimizer);

    let fast = optimized.execute(PUSHDOWN_SQL).unwrap();
    let slow = unoptimized.execute(PUSHDOWN_SQL).unwrap();

    assert!(!fast.batch.rows.is_empty(), "scenario must select rows");
    assert_eq!(
        sorted_debug(&fast.batch.rows),
        sorted_debug(&slow.batch.rows),
        "optimized plan changed the answer"
    );
    let fast_calls = fast.metrics.llm_calls();
    let slow_calls = slow.metrics.llm_calls();
    assert!(
        fast_calls < slow_calls,
        "pushdown must measurably cut LLM calls: optimized {fast_calls} vs unoptimized {slow_calls}"
    );
}

#[test]
fn explain_analyze_reports_estimated_and_actual_calls() {
    let catalog = seeded_catalog();
    let engine = llm_engine(&catalog, |c| c);
    let result = engine
        .execute(&format!("EXPLAIN ANALYZE {PUSHDOWN_SQL}"))
        .unwrap();
    let text = result.plan.expect("EXPLAIN ANALYZE must return plan text");

    // Per-operator estimates and actuals, joined on the same tree.
    assert!(text.contains("[est rows≈"), "missing estimates:\n{text}");
    assert!(text.contains("[act rows="), "missing actuals:\n{text}");
    // Plan-wide estimated and actual call counts.
    assert!(
        text.contains("estimated:"),
        "missing estimate footer:\n{text}"
    );
    assert!(text.contains("actual:"), "missing actuals footer:\n{text}");
    let actual_line = text.lines().find(|l| l.starts_with("actual:")).unwrap();
    assert!(
        actual_line.contains(&format!("{} LLM calls", result.metrics.llm_calls())),
        "actual line must carry the measured call count: {actual_line}"
    );
    // The optimized pushdown plan is hazard-free.
    assert!(lint_lines(&text).is_empty(), "unexpected lints:\n{text}");
}

#[test]
fn each_seeded_hazard_fires_exactly_one_lint() {
    let catalog = seeded_catalog();

    // Hazard: filter left above an LLM scan (optimizer off). Selecting every
    // column keeps projection pruning out of the picture.
    let unopt = llm_engine(&catalog, disable_optimizer);
    let text = explain(&unopt, PUSHDOWN_SQL);
    let lints = lint_lines(&text);
    assert_eq!(lints.len(), 1, "{text}");
    assert!(lints[0].contains("[filter-above-llm-scan]"), "{text}");

    // Hazard: LLM scan with no native pre-filter at all.
    let text = explain(&unopt, "SELECT id, category, score, notes FROM items");
    let lints = lint_lines(&text);
    assert_eq!(lints.len(), 1, "{text}");
    assert!(lints[0].contains("[llm-scan-no-filter]"), "{text}");

    // Hazard: unprojected columns inflating prompts. Pushdown is enabled so
    // the filter reaches the scan, pruning is disabled so the scan still
    // fetches every column for a one-column projection.
    let no_prune = llm_engine(&catalog, |mut c| {
        c.enable_projection_pruning = false;
        c
    });
    let text = explain(&no_prune, "SELECT id FROM items WHERE score > 900");
    let lints = lint_lines(&text);
    assert_eq!(lints.len(), 1, "{text}");
    assert!(lints[0].contains("[unprojected-columns]"), "{text}");

    // Hazard: cross join under LLM predicates. Both sides keep pushed
    // filters so no other lint has grounds to fire.
    let full = llm_engine(&catalog, |c| c);
    let text = explain(
        &full,
        "SELECT a.id, a.category, a.score, a.notes, b.id, b.category, b.score, b.notes \
         FROM items a CROSS JOIN items b WHERE a.score > 990 AND b.score > 990",
    );
    let lints = lint_lines(&text);
    assert_eq!(lints.len(), 1, "{text}");
    assert!(lints[0].contains("[cross-join-llm]"), "{text}");

    // Hazard: estimated spend above the tenant budget.
    let tight = llm_engine(&catalog, |c| c.with_cost_budget_usd(0.000_000_1));
    let text = explain(&tight, PUSHDOWN_SQL);
    let lints = lint_lines(&text);
    assert_eq!(lints.len(), 1, "{text}");
    assert!(lints[0].contains("[budget-exceeded]"), "{text}");
}
