//! End-to-end guarantees of the event-driven dispatch core (ISSUE 5): the
//! reactor path changes *how* a wave waits — one parked thread instead of a
//! thread per request — never what a query returns, what it costs, or how
//! deadlines behave.

use std::time::{Duration, Instant};

use llmsql_bench::parallel_scan_engine;
use llmsql_core::Engine;
use llmsql_llm::{KnowledgeBase, SimLlm};
use llmsql_store::Catalog;
use llmsql_types::{
    Column, DataType, EngineConfig, ErrorKind, ExecutionMode, LlmFidelity, PromptStrategy, Row,
    Schema, Value,
};

const SCAN_SQL: &str = "SELECT name, population FROM countries";

/// A `countries` engine with `rows` entities served tuple-at-a-time (one
/// enumerate + one lookup per row, so `parallelism` bounds one big wave) by
/// an async-capable simulator with `latency_ms` simulated round trips.
fn lookup_engine(rows: usize, parallelism: usize, latency_ms: f64) -> Engine {
    let schema = Schema::virtual_table(
        "countries",
        vec![
            Column::new("name", DataType::Text).primary_key(),
            Column::new("population", DataType::Int),
        ],
    );
    let data: Vec<Row> = (0..rows)
        .map(|i| {
            Row::new(vec![
                Value::Text(format!("Country {i:04}")),
                Value::Int(100_000 + 37 * i as i64),
            ])
        })
        .collect();
    let catalog = Catalog::new();
    catalog.create_virtual_table(schema.clone()).unwrap();
    let mut kb = KnowledgeBase::new();
    kb.add_table(schema, data);
    let mut config = EngineConfig::default()
        .with_mode(ExecutionMode::LlmOnly)
        .with_strategy(PromptStrategy::TupleAtATime)
        .with_parallelism(parallelism)
        .with_seed(7);
    config.max_scan_rows = rows;
    config.enable_prompt_cache = false;
    let mut engine = Engine::with_catalog(catalog, config);
    let sim = SimLlm::new(kb.into_shared(), LlmFidelity::perfect(), 7)
        .with_simulated_latency_ms(latency_ms);
    engine.attach_model(std::sync::Arc::new(sim)).unwrap();
    engine
}

/// The reactor path is what actually serves latency-simulating deployments
/// (the model advertises async submit), and its rows/call counts are
/// byte-identical to the blocking thread-pool baseline.
#[test]
fn reactor_waves_match_blocking_waves_byte_for_byte() {
    // latency 0 ⇒ async submit is off ⇒ the legacy par_map path.
    let blocking_engine = parallel_scan_engine(60, 4, 0.0);
    assert!(
        !blocking_engine.client().unwrap().supports_async(),
        "zero-latency simulator should keep the thread-pool path"
    );
    let blocking = blocking_engine.execute(SCAN_SQL).unwrap();

    // latency > 0 ⇒ async submit ⇒ waves park on the reactor.
    let reactor_engine = parallel_scan_engine(60, 4, 2.0);
    assert!(
        reactor_engine.client().unwrap().supports_async(),
        "latency-simulating model must advertise async submit"
    );
    let reactor = reactor_engine.execute(SCAN_SQL).unwrap();

    assert_eq!(blocking.rows(), reactor.rows(), "reactor changed the rows");
    assert_eq!(
        blocking.metrics.llm_calls(),
        reactor.metrics.llm_calls(),
        "reactor changed the logical call count"
    );
    assert!(
        reactor.metrics.peak_in_flight >= 2,
        "waves never overlapped"
    );
}

/// One thread really does hold a whole wave: a 48-lookup wave of 30ms calls
/// drains in ~one round trip through the reactor, not 48.
#[test]
fn one_wave_of_in_flight_calls_overlaps_on_the_callers_thread() {
    let engine = lookup_engine(48, 48, 30.0);
    let started = Instant::now();
    let result = engine.execute(SCAN_SQL).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(result.row_count(), 48);
    // 1 enumerate + 48 lookups at 30ms each: sequential would be ~1.5s; the
    // reactor needs ~2 round trips (enumerate, then the lookup wave).
    assert!(
        elapsed < Duration::from_millis(600),
        "48-call wave did not overlap: {elapsed:?}"
    );
    assert_eq!(result.metrics.llm_calls(), 49);
    assert!(
        result.metrics.peak_in_flight >= 48,
        "expected the whole wave in flight at once: {:?}",
        result.metrics
    );
}

/// A deadline that expires while calls are parked in the reactor aborts the
/// wave mid-flight (cancellation by drop), with the structured error and
/// partial accounting — it does not wait for the stragglers.
#[test]
fn deadline_fires_while_calls_are_parked_in_the_reactor() {
    let engine = lookup_engine(32, 32, 200.0);
    let started = Instant::now();
    // Enumerate (~200ms) fits; the 32-lookup wave (ready at ~400ms) does
    // not: the deadline fires at ~250ms with every lookup parked.
    let err = engine.execute_with_deadline(SCAN_SQL, 250.0).unwrap_err();
    let elapsed = started.elapsed();
    assert_eq!(err.kind, ErrorKind::DeadlineExceeded);
    assert!(err.message.contains("LLM call(s) issued"), "{err}");
    assert!(
        elapsed < Duration::from_millis(390),
        "deadline abort waited for parked calls: {elapsed:?}"
    );

    // An unhit deadline on the same deployment changes nothing.
    let baseline = lookup_engine(32, 32, 5.0).execute(SCAN_SQL).unwrap();
    let relaxed = lookup_engine(32, 32, 5.0)
        .execute_with_deadline(SCAN_SQL, 60_000.0)
        .unwrap();
    assert_eq!(baseline.rows(), relaxed.rows());
    assert_eq!(baseline.metrics.llm_calls(), relaxed.metrics.llm_calls());
}

/// Parallelism invariance holds through the reactor path: any wave width
/// yields the sequential run's rows and call counts, even with fidelity
/// noise dropping lines.
#[test]
fn reactor_scans_are_parallelism_invariant_under_noise() {
    let build = |parallelism: usize| {
        let (catalog, sim) = llmsql_bench::parallel_world(50, LlmFidelity::medium(), 1.0);
        let mut config = EngineConfig::default()
            .with_mode(ExecutionMode::LlmOnly)
            .with_strategy(PromptStrategy::BatchedRows)
            .with_batch_size(10)
            .with_parallelism(parallelism);
        config.max_scan_rows = 50;
        config.enable_prompt_cache = false;
        let mut engine = Engine::with_catalog(catalog, config);
        engine.attach_model(std::sync::Arc::new(sim)).unwrap();
        engine
    };
    let baseline = build(1).execute(SCAN_SQL).unwrap();
    for parallelism in [2, 4, 8] {
        let result = build(parallelism).execute(SCAN_SQL).unwrap();
        assert_eq!(
            baseline.rows(),
            result.rows(),
            "reactor rows diverged at parallelism {parallelism}"
        );
        assert_eq!(
            baseline.metrics.llm_calls(),
            result.metrics.llm_calls(),
            "reactor call count diverged at parallelism {parallelism}"
        );
    }
}
