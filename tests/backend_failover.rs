//! End-to-end guarantees of multi-backend dispatch: routing and failover may
//! change which endpoint serves a prompt, but never the rows a query returns
//! or the number of logical LLM calls it issues — at any parallelism, under
//! every routing policy, even with a backend hard down.

use llmsql_bench::{multi_backend_engine, parallel_scan_engine, slow_outlier_engine};
use llmsql_types::RoutingPolicy;

const SCAN_SQL: &str = "SELECT name, population FROM countries";

/// The ISSUE acceptance scenario: 3 simulated backends (one hard down), a
/// 100-row scan at parallelism 4 — identical rows and total call count as
/// the single-backend run, with per-backend counters visible in metrics.
#[test]
fn failing_backend_does_not_change_rows_or_call_counts() {
    let single = parallel_scan_engine(100, 4, 0.0).execute(SCAN_SQL).unwrap();
    assert_eq!(single.row_count(), 100);

    for policy in RoutingPolicy::ALL {
        let pooled = multi_backend_engine(100, 4, 0.0, policy, true)
            .execute(SCAN_SQL)
            .unwrap();
        assert_eq!(
            single.rows(),
            pooled.rows(),
            "rows diverged under {policy} with a failing backend"
        );
        assert_eq!(
            single.usage.calls, pooled.usage.calls,
            "logical call count diverged under {policy}"
        );
        assert_eq!(
            single.metrics.llm_calls(),
            pooled.metrics.llm_calls(),
            "metrics call count diverged under {policy}"
        );

        // Per-backend physical counters are surfaced in ExecMetrics.
        let m = &pooled.metrics;
        assert_eq!(m.backend_calls.len(), 3, "policy {policy}: {m:?}");
        let attempts: u64 = m.backend_calls.values().sum();
        let errors: u64 = m.backend_errors.values().sum();
        // Every error was retried somewhere, so physical attempts exceed
        // logical calls by exactly the error count.
        assert_eq!(attempts, m.llm_calls() + errors, "policy {policy}");
        // The healthy backends absorbed all logical calls...
        assert_eq!(
            m.backend_calls["edge-b"] + m.backend_calls["edge-c"]
                - m.backend_errors["edge-b"]
                - m.backend_errors["edge-c"],
            m.llm_calls(),
            "policy {policy}"
        );
        // ...and the down backend produced only errors.
        assert_eq!(
            m.backend_calls["edge-a"], m.backend_errors["edge-a"],
            "policy {policy}"
        );
    }
}

/// Same seed + query ⇒ byte-identical rows and identical physical
/// retry/failover traces across repeat runs. Round robin's cursor advances
/// in request-arrival order, so its full physical trace is pinned down at
/// parallelism 1; cost-aware ordering is static, so its trace is
/// reproducible even with 4 workers racing.
#[test]
fn failover_is_deterministic_across_runs() {
    for (policy, parallelism) in [
        (RoutingPolicy::RoundRobin, 1),
        (RoutingPolicy::CostAware, 4),
    ] {
        let run = || {
            let engine = multi_backend_engine(60, parallelism, 0.0, policy, true);
            let result = engine.execute(SCAN_SQL).unwrap();
            (
                result.rows().to_vec(),
                result.metrics.backend_calls.clone(),
                result.metrics.backend_errors.clone(),
            )
        };
        let first = run();
        let second = run();
        assert_eq!(first, second, "nondeterministic trace under {policy}");
    }
}

/// Rows and logical call counts are invariant across parallelism levels in a
/// mixed-health pool (the PR 1 determinism guarantee extended to failover).
#[test]
fn pooled_scan_is_parallelism_invariant() {
    let baseline = multi_backend_engine(50, 1, 0.0, RoutingPolicy::RoundRobin, true)
        .execute(SCAN_SQL)
        .unwrap();
    for parallelism in [2, 4, 8] {
        let result = multi_backend_engine(50, parallelism, 0.0, RoutingPolicy::RoundRobin, true)
            .execute(SCAN_SQL)
            .unwrap();
        assert_eq!(
            baseline.rows(),
            result.rows(),
            "rows diverged at parallelism {parallelism}"
        );
        assert_eq!(
            baseline.usage.calls, result.usage.calls,
            "call count diverged at parallelism {parallelism}"
        );
    }
}

/// A healthy pool spreads wave traffic across its members (round robin), and
/// failed attempts never consume the query's logical call budget.
#[test]
fn healthy_pool_spreads_load_and_budget_counts_logical_calls() {
    let result = multi_backend_engine(100, 4, 0.0, RoutingPolicy::RoundRobin, false)
        .execute(SCAN_SQL)
        .unwrap();
    let m = &result.metrics;
    let served: Vec<u64> = m.backend_calls.values().copied().collect();
    assert_eq!(served.iter().sum::<u64>(), m.llm_calls());
    assert!(
        served.iter().all(|&c| c > 0),
        "round robin left a backend idle: {:?}",
        m.backend_calls
    );
    assert_eq!(m.backend_errors.values().sum::<u64>(), 0);
}

/// The tail-latency acceptance scenario: 3 backends where one has 10× the
/// latency of its siblings, a 100-row scan at parallelism 4 under
/// `RoutingPolicy::LatencyAware` with hedging. Rows and logical call counts
/// must be byte-identical to the sequential single-backend baseline, with
/// hedges actually fired and won (the exploratory requests that discover the
/// outlier's latency are rescued by their hedges instead of eating the full
/// 10× round trip).
#[test]
fn hedging_with_a_slow_outlier_keeps_results_and_wins_hedges() {
    let baseline = parallel_scan_engine(100, 1, 0.0).execute(SCAN_SQL).unwrap();
    assert_eq!(baseline.row_count(), 100);

    let hedged = slow_outlier_engine(100, 4, RoutingPolicy::LatencyAware, true)
        .execute(SCAN_SQL)
        .unwrap();
    assert_eq!(
        baseline.rows(),
        hedged.rows(),
        "hedging changed the rows a scan returns"
    );
    assert_eq!(
        baseline.usage.calls, hedged.usage.calls,
        "hedges must not consume the logical call budget"
    );
    assert_eq!(baseline.metrics.llm_calls(), hedged.metrics.llm_calls());
    assert!(
        hedged.metrics.hedges_won > 0,
        "the slow outlier should have lost at least one hedge race: {:?}",
        hedged.metrics
    );
    assert!(hedged.metrics.hedges_issued >= hedged.metrics.hedges_won);

    // The same deployment without hedging: identical rows, zero hedges.
    let unhedged = slow_outlier_engine(100, 4, RoutingPolicy::LatencyAware, false)
        .execute(SCAN_SQL)
        .unwrap();
    assert_eq!(baseline.rows(), unhedged.rows());
    assert_eq!(unhedged.metrics.hedges_issued, 0);
    assert_eq!(unhedged.metrics.hedges_won, 0);
}

/// Latency-aware routing sends steady-state traffic to the fast members: the
/// slow outlier serves at most the cold-start exploration (bounded by one
/// dispatch wave, since in-flight requests have no sample yet), not a third
/// of the scan as round robin would give it. 300 rows = 30 pages, so
/// exploration (≤ 4 calls) is a small fraction of the whole scan.
#[test]
fn latency_aware_routing_starves_the_slow_outlier() {
    let result = slow_outlier_engine(300, 4, RoutingPolicy::LatencyAware, false)
        .execute(SCAN_SQL)
        .unwrap();
    let m = &result.metrics;
    let slow_share = m.backend_calls["edge-slow"] as f64 / m.llm_calls() as f64;
    assert!(
        slow_share < 0.2,
        "latency-aware routing kept feeding the slow outlier: {:?}",
        m.backend_calls
    );
    let round_robin = slow_outlier_engine(300, 4, RoutingPolicy::RoundRobin, false)
        .execute(SCAN_SQL)
        .unwrap();
    assert_eq!(result.rows(), round_robin.rows());
    assert!(
        round_robin.metrics.backend_calls["edge-slow"] > m.backend_calls["edge-slow"],
        "round robin should hit the outlier more than latency-aware routing"
    );
}

/// The multi-backend scenarios above now run through the event-driven
/// reactor (pools of `RemoteLlm` endpoints advertise async submit), so their
/// byte-identical guarantees already cover it; this pins that fact so a
/// regression that silently falls back to thread-per-request dispatch — or
/// silently changes results — fails loudly.
#[test]
fn pooled_engines_dispatch_through_the_reactor_and_keep_results() {
    let engine = multi_backend_engine(60, 4, 0.0, RoutingPolicy::RoundRobin, true);
    assert!(
        engine.client().unwrap().supports_async(),
        "a pool of RemoteLlm endpoints must advertise async submit"
    );
    let reactor = engine.execute(SCAN_SQL).unwrap();
    // Same rows as the non-pooled blocking baseline (latency 0 ⇒ par_map).
    let blocking = parallel_scan_engine(60, 1, 0.0).execute(SCAN_SQL).unwrap();
    assert_eq!(blocking.rows(), reactor.rows());
    assert_eq!(blocking.usage.calls, reactor.usage.calls);
    // Waves really overlapped on the reactor.
    assert!(reactor.metrics.peak_in_flight >= 2, "{:?}", reactor.metrics);
}

/// Cost-aware routing avoids the premium-priced backend entirely while the
/// cheap backends stay healthy, and total spend reflects that.
#[test]
fn cost_aware_routing_prefers_cheap_backends() {
    let cost_aware = multi_backend_engine(100, 4, 0.0, RoutingPolicy::CostAware, false)
        .execute(SCAN_SQL)
        .unwrap();
    assert_eq!(
        cost_aware.metrics.backend_calls["edge-c"], 0,
        "cost-aware routing used the premium backend: {:?}",
        cost_aware.metrics.backend_calls
    );

    let round_robin = multi_backend_engine(100, 4, 0.0, RoutingPolicy::RoundRobin, false)
        .execute(SCAN_SQL)
        .unwrap();
    assert!(round_robin.metrics.backend_calls["edge-c"] > 0);
    assert!(
        cost_aware.usage.cost_usd < round_robin.usage.cost_usd,
        "cost-aware spend {} should undercut round-robin spend {}",
        cost_aware.usage.cost_usd,
        round_robin.usage.cost_usd
    );
}
