//! Differential and invariant tests that pin down the properties the
//! reproduction's experiments rely on:
//!
//! * the optimizer never changes answers (Traditional mode, optimizer on vs
//!   off, over the whole generated query suite),
//! * LLM-only execution at perfect fidelity equals Traditional execution for
//!   every generated query and every decomposed strategy,
//! * the simulator is deterministic for a fixed seed and differs across
//!   seeds,
//! * degradation + hybrid completion round-trips at perfect fidelity.

use llmsql_core::{score_batches, Engine, EvalOptions};
use llmsql_store::{degrade_catalog, DegradeSpec};
use llmsql_types::{EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy};
use llmsql_workload::{join_chain_suite, standard_suite, World, WorldSpec};

fn world() -> World {
    World::generate(WorldSpec {
        countries: 20,
        cities_per_country: 2,
        people: 30,
        movies: 20,
        seed: 13,
    })
    .unwrap()
}

#[test]
fn optimizer_never_changes_traditional_answers() {
    let w = world();
    let optimized = w.oracle_engine();
    let mut config = EngineConfig::default().with_mode(ExecutionMode::Traditional);
    config.enable_optimizer = false;
    config.enable_predicate_pushdown = false;
    config.enable_projection_pruning = false;
    let unoptimized = Engine::with_catalog(w.catalog.clone(), config);

    let queries: Vec<_> = standard_suite(&w, 3)
        .into_iter()
        .chain(join_chain_suite(3))
        .collect();
    for q in queries {
        let a = optimized.execute(&q.sql).unwrap();
        let b = unoptimized.execute(&q.sql).unwrap();
        let score = score_batches(&a.batch, &b.batch, &EvalOptions::exact());
        assert!(
            score.exact,
            "optimizer changed the answer of {}: {score:?}",
            q.sql
        );
    }
}

#[test]
fn llm_only_at_perfect_fidelity_is_a_drop_in_replacement() {
    let w = world();
    let oracle = w.oracle_engine();
    for strategy in [PromptStrategy::BatchedRows, PromptStrategy::TupleAtATime] {
        let subject = w
            .subject_engine(
                EngineConfig::default()
                    .with_mode(ExecutionMode::LlmOnly)
                    .with_strategy(strategy)
                    .with_fidelity(LlmFidelity::perfect()),
            )
            .unwrap();
        for q in standard_suite(&w, 2) {
            let truth = oracle.execute(&q.sql).unwrap();
            let answer = subject.execute(&q.sql).unwrap();
            let options = if q.order_sensitive {
                EvalOptions::exact().order_sensitive()
            } else {
                EvalOptions::exact()
            };
            let score = score_batches(&answer.batch, &truth.batch, &options);
            assert!(
                score.exact,
                "strategy {strategy}, query {} diverged: {score:?}\n{}",
                q.id, q.sql
            );
        }
    }
}

#[test]
fn simulator_is_deterministic_per_seed_and_varies_across_seeds() {
    let w = world();
    let sql = "SELECT name, capital, population FROM countries";
    let run = |seed: u64| {
        let subject = w
            .subject_engine(
                EngineConfig::default()
                    .with_mode(ExecutionMode::LlmOnly)
                    .with_fidelity(LlmFidelity::medium())
                    .with_seed(seed),
            )
            .unwrap();
        subject.execute(sql).unwrap().batch
    };
    let a1 = run(100);
    let a2 = run(100);
    assert_eq!(a1, a2, "same seed must give identical answers");
    let b = run(101);
    assert_ne!(a1, b, "different seeds should give different noisy answers");
}

#[test]
fn degradation_then_hybrid_completion_round_trips() {
    let w = world();
    let oracle = w.oracle_engine();
    let (degraded, report) = degrade_catalog(&w.catalog, &DegradeSpec::nulls(0.6, 5)).unwrap();
    assert!(report.nulled_values > 0);
    let hybrid = w
        .subject_engine_with_catalog(
            degraded,
            EngineConfig::default()
                .with_mode(ExecutionMode::Hybrid)
                .with_fidelity(LlmFidelity::perfect()),
        )
        .unwrap();
    for q in standard_suite(&w, 2) {
        // Aggregates over degraded-and-refilled stores are exact only if every
        // referenced cell was refilled; at perfect fidelity they must be.
        let truth = oracle.execute(&q.sql).unwrap();
        let answer = hybrid.execute(&q.sql).unwrap();
        let score = score_batches(&answer.batch, &truth.batch, &EvalOptions::exact());
        assert!(
            score.exact,
            "hybrid at perfect fidelity diverged on {}: {score:?}",
            q.sql
        );
    }
}

#[test]
fn fidelity_knobs_shift_precision_and_recall_in_the_expected_direction() {
    let w = world();
    let oracle = w.oracle_engine();
    let sql = "SELECT name, capital FROM countries";
    let truth = oracle.execute(sql).unwrap();

    // A model that forgets (low recall knob, no hallucination) loses recall
    // but keeps precision high.
    let forgetful = {
        let mut f = LlmFidelity::perfect();
        f.recall = 0.5;
        f.enumeration_coverage = 0.5;
        f
    };
    let subject = w
        .subject_engine(
            EngineConfig::default()
                .with_mode(ExecutionMode::LlmOnly)
                .with_fidelity(forgetful),
        )
        .unwrap();
    let score = score_batches(
        &subject.execute(sql).unwrap().batch,
        &truth.batch,
        &EvalOptions::exact(),
    );
    assert!(
        score.recall < 0.9,
        "forgetful model should miss rows: {score:?}"
    );
    assert!(
        score.precision >= score.recall,
        "forgetting should hurt recall more than precision: {score:?}"
    );

    // A model that fabricates (hallucination high) loses precision.
    let fabulist = {
        let mut f = LlmFidelity::perfect();
        f.hallucination = 0.9;
        f.enumeration_coverage = 0.6;
        f
    };
    let subject = w
        .subject_engine(
            EngineConfig::default()
                .with_mode(ExecutionMode::LlmOnly)
                .with_fidelity(fabulist),
        )
        .unwrap();
    let score = score_batches(
        &subject.execute(sql).unwrap().batch,
        &truth.batch,
        &EvalOptions::exact(),
    );
    assert!(
        score.precision < 1.0,
        "fabricating model should hallucinate rows: {score:?}"
    );
}

#[test]
fn parallel_dispatch_is_deterministic_at_any_width() {
    // Same seed + same query must yield byte-identical result batches — and
    // therefore identical fidelity-noise outcomes — whether scan prompts are
    // dispatched sequentially or 4/8 at a time. Noise is a pure function of
    // (seed, prompt) and scans reassemble completions in page/tuple order,
    // so thread interleaving must never leak into answers.
    let w = world();
    let run = |strategy: PromptStrategy, fidelity: LlmFidelity, parallelism: usize| {
        let subject = w
            .subject_engine(
                EngineConfig::default()
                    .with_mode(ExecutionMode::LlmOnly)
                    .with_strategy(strategy)
                    .with_fidelity(fidelity)
                    .with_seed(77)
                    .with_parallelism(parallelism),
            )
            .unwrap();
        let mut tables = Vec::new();
        for q in standard_suite(&w, 2) {
            tables.push(subject.execute(&q.sql).unwrap().batch.to_ascii_table());
        }
        tables
    };
    for strategy in [
        PromptStrategy::BatchedRows,
        PromptStrategy::TupleAtATime,
        PromptStrategy::DecomposedOperators,
    ] {
        // medium fidelity exercises recall loss, hallucination, corruption
        // and format noise; perfect fidelity pins the lossless path.
        for fidelity in [LlmFidelity::perfect(), LlmFidelity::medium()] {
            let sequential = run(strategy, fidelity, 1);
            for parallelism in [4, 8] {
                let parallel = run(strategy, fidelity, parallelism);
                assert_eq!(
                    sequential, parallel,
                    "strategy {strategy} diverged at parallelism {parallelism}"
                );
            }
        }
    }
}
