//! End-to-end guarantees of the cross-query scheduler (the ISSUE 3
//! acceptance scenario): concurrent scheduling changes *when* queries run,
//! never what they return or what they cost; the global slot pool bounds
//! in-flight requests across queries; and with a backend hard down, the
//! circuit breaker bounds wasted attempts by its threshold, not by query
//! count.

use llmsql_bench::{parallel_scan_engine, parallel_world, slow_outlier_engine};
use llmsql_core::Engine;
use llmsql_sched::{QueryOutcome, QueryScheduler, QueryTicket};
use llmsql_types::{
    EngineConfig, ErrorKind, ExecutionMode, Priority, PromptStrategy, RoutingPolicy, SchedConfig,
    Value,
};
use llmsql_workload::mixed_backend_config;

const ROWS: usize = 60;
const SLOTS: usize = 3;
const SCAN_SQL: &str = "SELECT name, population FROM countries";

/// 16 distinct queries spread over 3 tenants.
fn workload() -> Vec<(String, String)> {
    let regions = ["Europe", "Asia", "Africa", "Americas", "Oceania"];
    (0..16)
        .map(|i| {
            let tenant = format!("tenant-{}", i % 3);
            let sql = match i % 4 {
                0 => "SELECT name, population FROM countries".to_string(),
                1 => format!(
                    "SELECT name FROM countries WHERE region = '{}'",
                    regions[i % regions.len()]
                ),
                2 => format!(
                    "SELECT name, population FROM countries WHERE population > {}",
                    100_000 + 37_219 * (10 + i as i64)
                ),
                _ => format!("SELECT name FROM countries LIMIT {}", 5 + i),
            };
            (tenant, sql)
        })
        .collect()
}

/// The acceptance scenario: 16 concurrent queries over 3 tenants through one
/// scheduler produce byte-identical rows and per-query logical call counts
/// to the same queries run sequentially, and global in-flight never exceeds
/// the slot pool.
#[test]
fn concurrent_queries_match_sequential_and_respect_the_slot_pool() {
    let queries = workload();

    // Sequential baseline: a fresh identical engine, one query at a time.
    let baseline_engine = parallel_scan_engine(ROWS, 4, 1.0);
    let baseline: Vec<(Vec<llmsql_types::Row>, u64)> = queries
        .iter()
        .map(|(_, sql)| {
            let r = baseline_engine.execute(sql).unwrap();
            (r.rows().to_vec(), r.metrics.llm_calls())
        })
        .collect();

    // The same queries through a scheduler: 4 query workers racing over 3
    // global call slots, each query itself 4-way parallel.
    let sched = QueryScheduler::new(
        parallel_scan_engine(ROWS, 4, 1.0),
        SchedConfig::default().with_workers(4).with_llm_slots(SLOTS),
    )
    .unwrap();
    let tickets: Vec<QueryTicket> = queries
        .iter()
        .map(|(tenant, sql)| {
            sched
                .submit(tenant.clone(), Priority::NORMAL, sql.clone())
                .unwrap()
        })
        .collect();
    let outcomes: Vec<QueryOutcome> = tickets.into_iter().map(QueryTicket::wait).collect();

    for (i, (outcome, (expected_rows, expected_calls))) in
        outcomes.iter().zip(&baseline).enumerate()
    {
        let result = outcome.result.as_ref().unwrap();
        assert_eq!(
            result.rows(),
            &expected_rows[..],
            "query {i} rows diverged under concurrent scheduling"
        );
        assert_eq!(
            result.metrics.llm_calls(),
            *expected_calls,
            "query {i} logical call count diverged"
        );
        assert_eq!(outcome.llm_calls, *expected_calls);
        assert_eq!(outcome.tenant, queries[i].0);
    }

    let stats = sched.stats();
    assert_eq!(stats.completed, 16);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.slot_capacity, SLOTS);
    assert!(
        stats.peak_slots_in_use <= SLOTS as u64,
        "global in-flight exceeded the slot pool: {stats:?}"
    );
    // 4 workers x parallelism 4 over 3 slots with per-call latency: the pool
    // must actually have been shared (overlap) and contended (waits).
    assert!(
        stats.peak_slots_in_use >= 2,
        "no cross-query overlap: {stats:?}"
    );
    assert!(
        stats.total_slot_wait_ms > 0.0,
        "16 parallel queries over 3 slots never contended: {stats:?}"
    );
    assert_eq!(stats.tenant_calls.len(), 3);
    assert_eq!(
        stats.tenant_calls.values().sum::<u64>(),
        baseline.iter().map(|(_, calls)| *calls).sum::<u64>()
    );
}

/// Circuit-breaker acceptance: one backend hard down across a 16-query
/// scheduled run. The breaker opens after its threshold and every later
/// request short-circuits, so total attempts on the dead backend are bounded
/// by the threshold (plus in-flight racers), not by query count — while rows
/// still match the healthy single-backend baseline.
#[test]
fn breaker_bounds_dead_backend_attempts_across_a_scheduled_run() {
    const THRESHOLD: usize = 3;
    let queries = workload();

    let baseline_engine = parallel_scan_engine(ROWS, 4, 0.0);
    let expected: Vec<Vec<llmsql_types::Row>> = queries
        .iter()
        .map(|(_, sql)| baseline_engine.execute(sql).unwrap().rows().to_vec())
        .collect();

    let breaker_engine = || {
        let (catalog, sim) = parallel_world(ROWS, llmsql_types::LlmFidelity::perfect(), 0.0);
        let base = EngineConfig::default()
            .with_mode(ExecutionMode::LlmOnly)
            .with_strategy(PromptStrategy::BatchedRows)
            .with_batch_size(10)
            .with_parallelism(4)
            .with_routing_policy(RoutingPolicy::RoundRobin)
            .with_circuit_breaker(THRESHOLD, 600_000.0);
        let mut config = mixed_backend_config(base, true);
        config.max_scan_rows = ROWS;
        config.enable_prompt_cache = false;
        let mut engine = Engine::with_catalog(catalog, config);
        engine
            .attach_model(std::sync::Arc::new(sim))
            .expect("canonical backend specs are valid");
        engine
    };

    let sched = QueryScheduler::new(
        breaker_engine(),
        SchedConfig::default().with_workers(4).with_llm_slots(SLOTS),
    )
    .unwrap();
    let tickets: Vec<QueryTicket> = queries
        .iter()
        .map(|(tenant, sql)| {
            sched
                .submit(tenant.clone(), Priority::NORMAL, sql.clone())
                .unwrap()
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let outcome = ticket.wait();
        let result = outcome.result.unwrap();
        assert_eq!(
            result.rows(),
            &expected[i][..],
            "query {i} rows diverged with a hard-down backend + breaker"
        );
    }

    let stats = sched
        .engine()
        .client()
        .expect("model attached")
        .backend_stats()
        .expect("pooled deployment");
    let down = stats.iter().find(|s| s.id == "edge-a").unwrap();
    // Bounded by the threshold plus racers that were already past the
    // breaker check when it opened — never by the ~100+ prompts of the run.
    assert!(
        down.calls as usize <= THRESHOLD + SLOTS,
        "dead backend absorbed {} attempts; breaker should cap near {THRESHOLD}: {down:?}",
        down.calls
    );
    assert_eq!(down.calls, down.errors, "dead backend only errors");
    assert!(down.breaker_open, "breaker should still be open");
    assert!(
        down.short_circuits > 0,
        "later requests should have skipped the dead backend: {down:?}"
    );
    // The healthy members served everything.
    let healthy_calls: u64 = stats
        .iter()
        .filter(|s| s.id != "edge-a")
        .map(|s| s.calls)
        .sum();
    assert!(healthy_calls > down.calls);
}

/// Fair-share smoke test at the facade level: tenants with 4:1 weights and
/// identical backlogs complete calls in ~4:1 ratio over the shared prefix.
#[test]
fn weighted_fair_share_tracks_weights_end_to_end() {
    let sched = QueryScheduler::new(
        parallel_scan_engine(30, 1, 0.0),
        SchedConfig::default()
            .with_workers(1)
            .with_policy(llmsql_types::SchedPolicy::WeightedFair)
            .with_tenant_weight("heavy", 4)
            .with_tenant_weight("light", 1)
            .paused(),
    )
    .unwrap();
    let sql = "SELECT name FROM countries";
    let tickets: Vec<QueryTicket> = (0..10)
        .flat_map(|_| {
            [
                sched.submit("heavy", Priority::NORMAL, sql).unwrap(),
                sched.submit("light", Priority::NORMAL, sql).unwrap(),
            ]
        })
        .collect();
    sched.resume();
    let outcomes: Vec<QueryOutcome> = tickets.into_iter().map(QueryTicket::wait).collect();
    let in_prefix = |tenant: &str| {
        outcomes
            .iter()
            .filter(|o| o.tenant == tenant && o.finish_seq <= 10)
            .count()
    };
    let (heavy, light) = (in_prefix("heavy"), in_prefix("light"));
    assert_eq!(heavy + light, 10);
    assert_eq!(
        heavy, 8,
        "expected a 4:1 split of the first 10, got {heavy}:{light}"
    );
    // Every query still returned real rows.
    assert!(outcomes
        .iter()
        .all(|o| o.result.as_ref().unwrap().row_count() == 30));
}

/// The deadline acceptance scenario: a query whose deadline is shorter than
/// its queue wait resolves with `ErrorKind::DeadlineExceeded` and is never
/// executed, while deadline-free companions are untouched; and a deadline
/// that is not hit changes nothing about a query's rows or call counts.
#[test]
fn deadline_shorter_than_queue_wait_is_cancelled_never_executed() {
    let sched = QueryScheduler::new(
        parallel_scan_engine(ROWS, 4, 1.0),
        SchedConfig::default().with_workers(1).paused(),
    )
    .unwrap();
    let doomed = sched
        .submit_with_deadline("t", Priority::NORMAL, SCAN_SQL, 10.0)
        .unwrap();
    let companion = sched.submit("t", Priority::NORMAL, SCAN_SQL).unwrap();
    // Let the deadline lapse while both queries queue behind the pause.
    std::thread::sleep(std::time::Duration::from_millis(25));
    sched.resume();

    let outcome = doomed.wait();
    let err = outcome.result.unwrap_err();
    assert_eq!(err.kind, ErrorKind::DeadlineExceeded);
    assert!(err.message.contains("0 LLM calls issued"), "{err}");
    assert_eq!(outcome.llm_calls, 0, "a cancelled query must never execute");

    let companion_outcome = companion.wait();
    let companion_result = companion_outcome.result.unwrap();
    assert_eq!(companion_result.row_count(), ROWS);

    // A generous deadline is transparent: identical rows and call counts.
    let relaxed = sched
        .submit_with_deadline("t", Priority::NORMAL, SCAN_SQL, 60_000.0)
        .unwrap()
        .wait();
    let relaxed_result = relaxed.result.unwrap();
    assert_eq!(relaxed_result.rows(), companion_result.rows());
    assert_eq!(
        relaxed_result.metrics.llm_calls(),
        companion_result.metrics.llm_calls()
    );

    let stats = sched.stats();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.completed, 3);
}

/// Scheduled queries against the slow-outlier deployment with hedging: the
/// scheduler's slot pool gates hedges (each hedge holds a slot, so the
/// global in-flight cap still holds) and every query's rows and logical
/// call counts stay byte-identical to the sequential baseline.
#[test]
fn scheduled_hedging_respects_slots_and_keeps_results() {
    let queries = workload();
    let baseline_engine = parallel_scan_engine(ROWS, 4, 0.0);
    let baseline: Vec<(Vec<llmsql_types::Row>, u64)> = queries
        .iter()
        .map(|(_, sql)| {
            let r = baseline_engine.execute(sql).unwrap();
            (r.rows().to_vec(), r.metrics.llm_calls())
        })
        .collect();

    const HEDGE_SLOTS: usize = 8;
    let sched = QueryScheduler::new(
        slow_outlier_engine(ROWS, 4, RoutingPolicy::LatencyAware, true),
        SchedConfig::default()
            .with_workers(4)
            .with_llm_slots(HEDGE_SLOTS),
    )
    .unwrap();
    let tickets: Vec<QueryTicket> = queries
        .iter()
        .map(|(tenant, sql)| {
            sched
                .submit(tenant.clone(), Priority::NORMAL, sql.clone())
                .unwrap()
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let outcome = ticket.wait();
        let result = outcome.result.unwrap();
        assert_eq!(
            result.rows(),
            &baseline[i].0[..],
            "query {i} rows diverged under scheduled hedging"
        );
        assert_eq!(
            result.metrics.llm_calls(),
            baseline[i].1,
            "query {i} logical call count diverged (hedges must be budget-free)"
        );
    }
    let stats = sched.stats();
    assert_eq!(stats.completed, 16);
    // Hedge permits come from the same slot pool, so the accounted global
    // in-flight cap holds even with hedges firing.
    assert!(
        stats.peak_slots_in_use <= HEDGE_SLOTS as u64,
        "hedges overflowed the slot pool: {stats:?}"
    );
}

/// The ISSUE 5 acceptance scenario: with `llm_slots = 64` and 4 scheduler
/// workers, a multi-tenant suite sustains ~64 concurrent in-flight simulated
/// calls — each worker thread parks on its wave's reactor instead of pinning
/// one thread per request — while every query's rows and logical call counts
/// stay byte-identical to an unscheduled run of the same engine.
#[test]
fn async_core_holds_64_in_flight_calls_on_4_worker_threads() {
    use llmsql_llm::{KnowledgeBase, SimLlm};
    use llmsql_store::Catalog;
    use llmsql_types::{Column, DataType, LlmFidelity, Row, SchedConfig, Schema};

    const TABLE_ROWS: usize = 64;
    let build_engine = |parallelism: usize| {
        let schema = Schema::virtual_table(
            "countries",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("population", DataType::Int),
            ],
        );
        let data: Vec<Row> = (0..TABLE_ROWS)
            .map(|i| {
                Row::new(vec![
                    llmsql_types::Value::Text(format!("Country {i:04}")),
                    llmsql_types::Value::Int(100_000 + 37 * i as i64),
                ])
            })
            .collect();
        let catalog = Catalog::new();
        catalog.create_virtual_table(schema.clone()).unwrap();
        let mut kb = KnowledgeBase::new();
        kb.add_table(schema, data);
        // Tuple-at-a-time: one enumerate, then one 64-lookup wave per query —
        // at parallelism 64 the whole wave is in flight at once.
        let mut config = EngineConfig::default()
            .with_mode(ExecutionMode::LlmOnly)
            .with_strategy(PromptStrategy::TupleAtATime)
            .with_parallelism(parallelism)
            .with_seed(7);
        config.max_scan_rows = TABLE_ROWS;
        config.enable_prompt_cache = false;
        let mut engine = Engine::with_catalog(catalog, config);
        let sim = SimLlm::new(kb.into_shared(), LlmFidelity::perfect(), 7)
            .with_simulated_latency_ms(12.0);
        engine.attach_model(std::sync::Arc::new(sim)).unwrap();
        engine
    };

    // Multi-tenant workload: 8 queries over 3 tenants, distinct filters.
    let queries: Vec<(String, String)> = (0..8)
        .map(|i| {
            (
                format!("tenant-{}", i % 3),
                format!(
                    "SELECT name, population FROM countries WHERE population > {}",
                    90_000 + i
                ),
            )
        })
        .collect();

    // Unscheduled baseline on an identical engine.
    let baseline_engine = build_engine(64);
    assert!(baseline_engine.client().unwrap().supports_async());
    let baseline: Vec<(Vec<llmsql_types::Row>, u64)> = queries
        .iter()
        .map(|(_, sql)| {
            let r = baseline_engine.execute(sql).unwrap();
            (r.rows().to_vec(), r.metrics.llm_calls())
        })
        .collect();
    // Sequential sanity for one query: wave width never changes results.
    let seq = build_engine(1).execute(&queries[0].1).unwrap();
    assert_eq!(seq.rows(), &baseline[0].0[..]);
    assert_eq!(seq.metrics.llm_calls(), baseline[0].1);

    let sched = QueryScheduler::new(
        build_engine(64),
        SchedConfig::default()
            .with_workers(4)
            .with_llm_slots(64)
            .paused(),
    )
    .unwrap();
    let tickets: Vec<QueryTicket> = queries
        .iter()
        .map(|(tenant, sql)| {
            sched
                .submit(tenant.clone(), Priority::NORMAL, sql.clone())
                .unwrap()
        })
        .collect();
    sched.resume();
    let outcomes: Vec<QueryOutcome> = tickets.into_iter().map(QueryTicket::wait).collect();

    let mut peak_in_flight = 0;
    for (i, outcome) in outcomes.iter().enumerate() {
        let result = outcome.result.as_ref().unwrap();
        assert_eq!(
            result.rows(),
            &baseline[i].0[..],
            "query {i} rows diverged through the async core"
        );
        assert_eq!(
            result.metrics.llm_calls(),
            baseline[i].1,
            "query {i} logical call count diverged"
        );
        peak_in_flight = peak_in_flight.max(result.metrics.peak_in_flight);
    }
    let stats = sched.stats();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.slot_capacity, 64);
    // The acceptance bar: the deployment actually sustained a large share of
    // the 64-slot capacity in flight at once (4 queries × 64-lookup waves
    // racing over 64 slots), held by 4 worker threads parked on reactors —
    // not by 64 blocked threads. `examples/async_dispatch.rs` (run in CI)
    // additionally asserts the OS thread count stays ≤ 8.
    assert!(
        stats.peak_slots_in_use >= 48,
        "expected ≥ 48 of 64 slots in flight at peak: {stats:?}"
    );
    assert!(
        peak_in_flight >= 48,
        "expected a query to hold ≥ 48 in-flight calls: {peak_in_flight}"
    );
}

/// The scheduler works for traditional (no-model) engines too — queue-time
/// and run-time accounting still apply even when no LLM slots are taken.
#[test]
fn traditional_queries_schedule_without_slots() {
    let engine = Engine::new(EngineConfig::default().with_mode(ExecutionMode::Traditional));
    engine
        .execute_script(
            "CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT); \
             INSERT INTO kv VALUES (1, 'one'), (2, 'two')",
        )
        .unwrap();
    let sched = QueryScheduler::new(engine, SchedConfig::default()).unwrap();
    let outcome = sched
        .submit("t", Priority::HIGH, "SELECT v FROM kv WHERE k = 2")
        .unwrap()
        .wait();
    let result = outcome.result.unwrap();
    assert_eq!(result.scalar(), Some(Value::Text("two".into())));
    assert_eq!(outcome.llm_calls, 0);
    assert_eq!(outcome.slot_wait_ms, 0.0);
    assert_eq!(outcome.priority, Priority::HIGH);
    assert_eq!(sched.stats().peak_slots_in_use, 0);
}
