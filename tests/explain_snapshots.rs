//! Golden-file snapshot tests for `EXPLAIN` / `EXPLAIN ANALYZE` text.
//!
//! The rendered plan is part of the debugging contract: estimates, rule
//! traces, lint lines and the estimated-vs-actual layout should not drift
//! silently. Wall-clock digits are the only non-deterministic part, so the
//! normalizer rewrites `wall=<digits>.<digits>ms` to `wall=NNms` before
//! comparing. Regenerate the goldens with:
//!
//! ```sh
//! UPDATE_SNAPSHOTS=1 cargo test --test explain_snapshots
//! ```

use llmsql_core::Engine;
use llmsql_types::{EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy};

/// Replace the digits of every `wall=<float>ms` occurrence with `NN` so
/// ANALYZE output is stable across runs (no regex: plain scan-and-rewrite).
fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find("wall=") {
        let (head, tail) = rest.split_at(pos + "wall=".len());
        out.push_str(head);
        let digits = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '.'))
            .unwrap_or(tail.len());
        out.push_str("NN");
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

fn check_snapshot(name: &str, actual: &str) {
    let path = format!("{}/tests/snapshots/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    let actual = normalize(actual);
    if std::env::var("UPDATE_SNAPSHOTS").is_ok() {
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {path} ({e}); run with UPDATE_SNAPSHOTS=1"));
    assert_eq!(
        actual, expected,
        "EXPLAIN text drifted from {name}.txt; if intended, rerun with UPDATE_SNAPSHOTS=1"
    );
}

/// A small fixed relation so the estimates are stable.
fn engine(optimize: bool) -> Engine {
    let mut config = EngineConfig::default()
        .with_mode(ExecutionMode::LlmOnly)
        .with_strategy(PromptStrategy::BatchedRows)
        .with_fidelity(LlmFidelity::perfect());
    if !optimize {
        config.enable_optimizer = false;
        config.enable_predicate_pushdown = false;
        config.enable_projection_pruning = false;
    }
    let oracle = Engine::new(EngineConfig::default().with_mode(ExecutionMode::Traditional));
    oracle
        .execute_script(
            "CREATE TABLE towns (name TEXT PRIMARY KEY, region TEXT, population INTEGER);
             INSERT INTO towns VALUES
               ('Aarhus','north',336), ('Bergen','north',286), ('Cadiz','south',116),
               ('Delft','west',104), ('Evora','south',57), ('Fulda','east',69),
               ('Gent','west',265), ('Hobro','north',12), ('Imola','south',70),
               ('Jena','east',111)",
        )
        .unwrap();
    let kb = Engine::knowledge_from_catalog(oracle.catalog()).unwrap();
    let mut subject = Engine::with_catalog(oracle.catalog().deep_clone().unwrap(), config);
    subject.attach_simulator(kb.into_shared()).unwrap();
    subject
}

fn explain_text(engine: &Engine, sql: &str) -> String {
    engine.execute(sql).unwrap().plan.expect("plan text")
}

#[test]
fn explain_optimized_pushdown() {
    let text = explain_text(
        &engine(true),
        "EXPLAIN SELECT name FROM towns WHERE population > 100 AND region LIKE '%o%'",
    );
    check_snapshot("explain_optimized_pushdown", &text);
}

#[test]
fn explain_unoptimized_with_lints() {
    let text = explain_text(
        &engine(false),
        "EXPLAIN SELECT name FROM towns WHERE population > 100",
    );
    check_snapshot("explain_unoptimized_with_lints", &text);
}

#[test]
fn explain_analyze_actuals() {
    let text = explain_text(
        &engine(true),
        "EXPLAIN ANALYZE SELECT name FROM towns WHERE population > 100",
    );
    check_snapshot("explain_analyze_actuals", &text);
}
