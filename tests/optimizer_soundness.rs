//! Optimizer soundness over the whole generated workload, in LLM-only mode:
//! for every query in the standard suite, the optimized plan must return
//! byte-identical rows to a fully disabled optimizer, and must never issue
//! *more* LLM calls. This is the property the static cost model and the
//! rewrite rules are allowed to assume — rewrites change cost, never
//! answers.

use llmsql_core::Engine;
use llmsql_types::{EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy, Row};
use llmsql_workload::{standard_suite, World, WorldSpec};

fn world() -> World {
    World::generate(WorldSpec {
        countries: 15,
        cities_per_country: 2,
        people: 20,
        movies: 15,
        seed: 23,
    })
    .unwrap()
}

fn subject(w: &World, optimize: bool) -> Engine {
    let mut config = EngineConfig::default()
        .with_mode(ExecutionMode::LlmOnly)
        .with_strategy(PromptStrategy::BatchedRows)
        .with_fidelity(LlmFidelity::perfect());
    if !optimize {
        config.enable_optimizer = false;
        config.enable_predicate_pushdown = false;
        config.enable_projection_pruning = false;
    }
    w.subject_engine(config).unwrap()
}

/// Canonical form for order-insensitive comparison: render each row and
/// sort the renderings, so the comparison is still byte-level per row.
fn canonical(rows: &[Row], order_sensitive: bool) -> Vec<String> {
    let mut out: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    if !order_sensitive {
        out.sort();
    }
    out
}

#[test]
fn optimized_plans_match_unoptimized_rows_with_no_extra_llm_calls() {
    let w = world();
    let optimized = subject(&w, true);
    let unoptimized = subject(&w, false);

    let mut total_opt_calls = 0u64;
    let mut total_unopt_calls = 0u64;
    for q in standard_suite(&w, 2) {
        let a = optimized.execute(&q.sql).unwrap();
        let b = unoptimized.execute(&q.sql).unwrap();
        assert_eq!(
            canonical(&a.batch.rows, q.order_sensitive),
            canonical(&b.batch.rows, q.order_sensitive),
            "optimizer changed the rows of {} ({})",
            q.id,
            q.sql
        );
        let opt_calls = a.metrics.llm_calls();
        let unopt_calls = b.metrics.llm_calls();
        assert!(
            opt_calls <= unopt_calls,
            "optimizer increased LLM calls for {} ({}): {opt_calls} > {unopt_calls}",
            q.id,
            q.sql
        );
        total_opt_calls += opt_calls;
        total_unopt_calls += unopt_calls;
    }
    assert!(
        total_opt_calls <= total_unopt_calls,
        "suite-wide: {total_opt_calls} > {total_unopt_calls}"
    );
}
